"""The PIM module's timing model.

The module is the *memory* for PIM-enabled scopes: besides PIM ops it
services the host's loads, stores and writebacks to those addresses.  Per
scope, everything is processed in arrival order -- a read that arrived
after a PIM op waits for that op to finish executing, because the crossbar
arrays are occupied for the whole operation (Section III).  Different
scopes are independent crossbar groups and proceed in parallel.

Capacity model (the source of the back-pressure shaping Figs. 7/10/11a):

* PIM ops occupy the module's **op buffer** (``buffer_capacity``; ``None``
  reproduces Fig. 11a's unbounded buffer) from arrival until their
  execution *starts*;
* plain accesses occupy a separate, larger access queue
  (``access_queue_capacity``), standing in for the module's internal
  bank queues.

When either queue is full the memory controller keeps the message and
retries, propagating back-pressure toward the host.

On completing a PIM op the module notifies the MC (which may have ops
waiting for buffer space) and invokes the system's ``on_execute`` callback
to bump the result lines' version tags -- the stale-read detector's ground
truth.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Dict, Optional

from repro.memory.versioned import VersionedMemory
from repro.sim.component import Component
from repro.sim.config import PimModuleConfig
from repro.sim.kernel import Simulator, WHEEL_MASK, WHEEL_SLOTS
from repro.sim.messages import Message, MessageType
from repro.sim.stats import StatGroup

_LOAD = MessageType.LOAD
_STORE = MessageType.STORE
_WRITEBACK = MessageType.WRITEBACK
_PIM_OP = MessageType.PIM_OP


class PimModule(Component):
    """Per-scope in-order execution engine of the bulk-bitwise module."""

    #: Service time of a plain access once the scope's arrays are free.
    ACCESS_SERVICE_INTERVAL = 4

    def __init__(
        self,
        sim: Simulator,
        name: str,
        config: PimModuleConfig,
        memory: VersionedMemory,
        resp_net: Component,
        access_latency: int = 180,
        access_queue_capacity: int = 512,
        latency_fn: Optional[Callable[[Message], int]] = None,
        on_execute: Optional[Callable[[Message], None]] = None,
        result_lines_fn: Optional[Callable[[int], frozenset]] = None,
    ) -> None:
        super().__init__(sim, name)
        self.config = config
        self.memory = memory
        self.resp_net = resp_net
        self.access_latency = access_latency
        self.access_queue_capacity = access_queue_capacity
        self.latency_fn = latency_fn
        self.on_execute = on_execute
        #: scope id -> line addresses its PIM ops write.  Accesses to
        #: *other* lines of the scope (record data) target crossbar
        #: arrays the op does not modify, so they are served without
        #: waiting for queued ops -- serving them early is unobservable.
        #: ``None`` falls back to conservatively ordering everything.
        self.result_lines_fn = result_lines_fn
        self.mc = None  # set by the system builder
        #: Per-scope FIFO of pending messages (arrival order = dependency
        #: order; Section V-A).
        self._scope_queues: Dict[int, deque] = {}
        #: scope -> queued (not yet started) PIM ops in that scope's FIFO,
        #: maintained incrementally so the Fig. 10b statistic doesn't
        #: rescan every queue on every op arrival.
        self._queued_ops_by_scope: Dict[int, int] = {}
        self._scopes_with_queued_ops = 0
        #: Scopes whose head item is currently being processed.
        self._busy_scopes: Dict[int, Message] = {}
        self._buffered_ops = 0
        self._queued_accesses = 0
        #: Scopes whose head PIM op is waiting on max_concurrent_scopes.
        self._throttled: set = set()
        # Insertion-ordered dedup of parked senders (O(1) membership).
        self._waiting_senders: dict = {}
        self.stats = StatGroup(name)
        self._buffer_at_arrival = self.stats.mean("buffer_len_at_arrival",
                                                  extremes=False)
        self._scopes_at_arrival = self.stats.mean("unique_scopes_at_arrival",
                                                  extremes=False)
        # Batched as plain ints, synced into the StatGroup at snapshot.
        self._executed = 0
        self._accesses = 0
        self.stats.register_flush(self._flush_stats)
        self._access_on_wheel = 0 < access_latency < WHEEL_SLOTS
        # Pre-bound callables for the per-access hot path.
        self._resp_offer = resp_net.offer
        self._serve_direct_bound = self._serve_direct
        self._scope_done_bound = self._scope_done
        self._advance_scope_bound = self._advance_scope
        self._complete_op_bound = self._complete_op
        #: Stall-attribution bucket (Tracer-owned dict) when tracing.
        self._stalls = None

    def _flush_stats(self) -> None:
        stats = self.stats
        stats.counter("ops_executed").value = self._executed
        stats.counter("accesses_served").value = self._accesses

    # ------------------------------------------------------------------ #
    # admission
    # ------------------------------------------------------------------ #

    @property
    def is_full(self) -> bool:
        """Op-buffer occupancy check used by the MC before forwarding."""
        cap = self.config.buffer_capacity
        return cap is not None and self._buffered_ops >= cap

    @property
    def access_queue_full(self) -> bool:
        return self._queued_accesses >= self.access_queue_capacity

    @property
    def occupancy(self) -> int:
        """Buffered (not yet executing) PIM ops."""
        return self._buffered_ops

    def can_accept(self, msg: Message) -> bool:
        if msg.mtype is MessageType.PIM_OP:
            return not self.is_full
        return not self.access_queue_full

    #: Message kinds the module services (it is the memory for PIM scopes).
    ACCEPTED_TYPES = frozenset({
        MessageType.PIM_OP, MessageType.LOAD, MessageType.STORE,
        MessageType.WRITEBACK, MessageType.FLUSH,
    })

    def offer(self, msg: Message, sender: Optional[Component] = None) -> bool:
        if msg.mtype not in self.ACCEPTED_TYPES:
            raise ValueError(f"the PIM module cannot service {msg.mtype}")
        if not self.can_accept(msg):
            if sender is not None:
                self._waiting_senders[sender] = None
            return False
        trace = self._trace
        if trace is not None:
            trace.record(self.sim.now, self.name, msg.mtype.name, msg.op_id)
        if msg.mtype is _PIM_OP:
            # Fig. 10a/b statistics: sampled at op arrival, before insertion.
            stat = self._buffer_at_arrival
            stat.total += self._buffered_ops
            stat.count += 1
            stat = self._scopes_at_arrival
            stat.total += self._scopes_with_queued_ops
            stat.count += 1
            self._buffered_ops += 1
            count = self._queued_ops_by_scope.get(msg.scope, 0)
            self._queued_ops_by_scope[msg.scope] = count + 1
            if count == 0:
                self._scopes_with_queued_ops += 1
        elif not self._conflicts_with_ops(msg):
            # Record-data access: its arrays are not written by PIM ops;
            # serve it directly at the access rate.  (Inlined wheel-tier
            # Simulator.schedule; the interval is a small constant.)
            sim = self.sim
            sim._seq = seq = sim._seq + 1
            sim._wheel[
                (sim.now + self.ACCESS_SERVICE_INTERVAL) & WHEEL_MASK
            ].append((seq, self._serve_direct_bound, (msg,)))
            sim._wheel_count += 1
            return True
        else:
            self._queued_accesses += 1
        queue = self._scope_queues.setdefault(msg.scope, deque())
        queue.append(msg)
        if msg.scope not in self._busy_scopes:
            self.sim.call_at_now(self._advance_scope_bound, msg.scope)
        return True

    def _conflicts_with_ops(self, msg: Message) -> bool:
        """Must this access order behind the scope's queued PIM ops?"""
        if self.result_lines_fn is None:
            return True
        result_lines = self.result_lines_fn(msg.scope)
        return (msg.addr & ~63) in result_lines

    def _unique_buffered_scopes(self) -> int:
        """Scopes with at least one queued (not yet started) PIM op."""
        return self._scopes_with_queued_ops

    # ------------------------------------------------------------------ #
    # per-scope in-order processing
    # ------------------------------------------------------------------ #

    def _advance_scope(self, scope: int) -> None:
        if scope in self._busy_scopes:
            return
        queue = self._scope_queues.get(scope)
        if not queue:
            return
        msg = queue[0]
        if msg.mtype is MessageType.PIM_OP and self._at_concurrency_limit():
            stalls = self._stalls
            if stalls is not None:
                # One contention incident per head op parked at the
                # max_concurrent_scopes crossbar limit.
                stalls["crossbar_contention"] = \
                    stalls.get("crossbar_contention", 0) + 1
            self._throttled.add(scope)
            return
        queue.popleft()
        self._busy_scopes[scope] = msg
        if msg.mtype is _PIM_OP:
            self._buffered_ops -= 1
            count = self._queued_ops_by_scope[scope] - 1
            self._queued_ops_by_scope[scope] = count
            if count == 0:
                self._scopes_with_queued_ops -= 1
            if self._waiting_senders:
                self._wake_senders()
            # Op execution is long (microseconds): usually a heap delay,
            # so the generic schedule() picks the tier.
            self.sim.schedule(self._latency_of(msg), self._complete_op_bound, msg)
        else:
            self._queued_accesses -= 1
            if self._waiting_senders:
                self._wake_senders()
            self._serve_access(msg)
            sim = self.sim
            sim._seq = seq = sim._seq + 1
            sim._wheel[
                (sim.now + self.ACCESS_SERVICE_INTERVAL) & WHEEL_MASK
            ].append((seq, self._scope_done_bound, (scope,)))
            sim._wheel_count += 1

    def _serve_direct(self, msg: Message) -> None:
        """Serve an access that bypassed the per-scope FIFO.

        Nothing else references the message afterwards, so a terminal
        writeback can recycle immediately (FIFO-ordered accesses keep
        their message alive in ``_busy_scopes`` until ``_scope_done``).
        """
        self._serve_access(msg)
        if msg.mtype is _WRITEBACK:
            msg.release()

    def _serve_access(self, msg: Message) -> None:
        self._accesses += 1
        mtype = msg.mtype
        if mtype is _LOAD:
            version = self.memory.read(msg.addr)
            resp = msg.make_response(MessageType.LOAD_RESP, version=version)
        elif mtype is _STORE:
            version = self.memory.bump(msg.addr)
            resp = msg.make_response(MessageType.STORE_ACK, version=version)
        elif mtype is _WRITEBACK:
            self.memory.write(msg.addr, msg.version)
            return
        elif mtype is MessageType.FLUSH:
            resp = msg.make_response(MessageType.FLUSH_ACK)
        else:  # pragma: no cover - defensive
            raise ValueError(f"PIM module cannot serve {mtype}")
        if self._access_on_wheel:
            # Inlined Simulator.schedule (wheel tier).
            sim = self.sim
            sim._seq = seq = sim._seq + 1
            sim._wheel[(sim.now + self.access_latency) & WHEEL_MASK].append(
                (seq, self._resp_offer, (resp, None)))
            sim._wheel_count += 1
        else:
            self.sim.schedule(self.access_latency, self._resp_offer,
                              resp, None)

    def _latency_of(self, msg: Message) -> int:
        if self.config.zero_logic:
            return 0
        if self.latency_fn is not None:
            return max(0, self.latency_fn(msg))
        return self.config.op_latency

    def _at_concurrency_limit(self) -> bool:
        limit = self.config.max_concurrent_scopes
        if limit is None:
            return False
        running_ops = sum(
            1 for m in self._busy_scopes.values()
            if m.mtype is MessageType.PIM_OP
        )
        return running_ops >= limit

    def _complete_op(self, msg: Message) -> None:
        self._executed += 1
        trace = self._trace
        if trace is not None:
            trace.record(self.sim.now, self.name, "PIM_OP_DONE", msg.op_id)
        if self.on_execute is not None:
            self.on_execute(msg)
        if self.mc is not None:
            self.mc.pim_op_completed(msg.scope)
        self._scope_done(msg.scope)
        if self._throttled:
            throttled, self._throttled = self._throttled, set()
            for other in throttled:
                self._advance_scope(other)

    def _scope_done(self, scope: int) -> None:
        msg = self._busy_scopes.pop(scope, None)
        if msg is not None and msg.mtype is MessageType.WRITEBACK:
            # Terminal (no response) and no longer referenced: recycle.
            # Releasing earlier, in _serve_access, would put a message
            # still held in _busy_scopes back into the pool.
            msg.release()
        self._advance_scope(scope)

    def _wake_senders(self) -> None:
        waiters = self._waiting_senders
        self._waiting_senders = {}
        for waiter in waiters:
            waiter.unblock()
