"""The PIM instruction set.

Bulk-bitwise PIM exposes a fine-grained instruction set (Section IV-A of
the paper: "usually bulk-bitwise PIM has fine-grained instruction sets
(e.g., AND, OR, NOT, ADD, MUL), requiring multiple PIM ops to perform a
full computation").  Each :class:`PimInstruction` targets a single scope
and compiles -- against that scope's column layout -- into a
:class:`~repro.pim.logic.MicroProgram` of MAGIC INIT/NOR steps.

The database workloads use the ``SCAN_*`` filter instructions plus the
``COMBINE_*`` bitmap ops; ``ADD_FIELDS`` exists to demonstrate arithmetic
(and to give the latency model a long-op example).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.pim.logic import ColumnAllocator, LogicBuilder, MicroProgram


class PimOpcode(enum.Enum):
    """Opcodes; each executes within one scope."""

    SCAN_EQ = "scan_eq"  # result[slot] = (field == value)
    SCAN_LT = "scan_lt"  # result[slot] = (field < value)
    SCAN_GE = "scan_ge"  # result[slot] = (field >= value)
    SCAN_RANGE = "scan_range"  # result[slot] = (lo <= field < hi)
    COMBINE_AND = "combine_and"  # result[dst] = result[a] AND result[b]
    COMBINE_OR = "combine_or"  # result[dst] = result[a] OR result[b]
    RESULT_NOT = "result_not"  # result[dst] = NOT result[a]
    ADD_FIELDS = "add_fields"  # result region <- field_a + field_b (vector add)


@dataclass(frozen=True)
class PimInstruction:
    """One PIM op: an opcode plus compile-time operands.

    Attributes:
        opcode: what to compute.
        field_name: primary input field (scan/add ops).
        field_b: second input field (``ADD_FIELDS``).
        lo, hi: constant operands (``SCAN_RANGE`` uses both; ``SCAN_EQ``,
            ``SCAN_LT`` and ``SCAN_GE`` use ``lo``).
        slot: result-bitmap slot written.
        src_slots: input result slots (``COMBINE_*`` / ``RESULT_NOT``).
    """

    opcode: PimOpcode
    field_name: Optional[str] = None
    field_b: Optional[str] = None
    lo: int = 0
    hi: int = 0
    slot: int = 0
    src_slots: Tuple[int, ...] = field(default=())

    def compile(self, layout: "ScopeLayout") -> MicroProgram:
        """Lower to MAGIC microcode for a scope with the given layout."""
        alloc = ColumnAllocator(layout.scratch_first, layout.scratch_limit)
        b = LogicBuilder(alloc)
        result_col = layout.result_col(self.slot)
        op = self.opcode
        if op in (PimOpcode.SCAN_EQ, PimOpcode.SCAN_LT, PimOpcode.SCAN_GE,
                  PimOpcode.SCAN_RANGE):
            bits = layout.field_cols(self.field_name)
            if op is PimOpcode.SCAN_EQ:
                pred = b.eq_const(bits, self.lo)
            elif op is PimOpcode.SCAN_LT:
                pred = b.lt_const(bits, self.lo)
            elif op is PimOpcode.SCAN_GE:
                pred = b.ge_const(bits, self.lo)
            else:
                pred = b.range_const(bits, self.lo, self.hi)
            # Only valid (occupied) rows may match.
            matched = b.and_([pred, layout.valid_col])
            b.copy_to(matched, result_col)
        elif op in (PimOpcode.COMBINE_AND, PimOpcode.COMBINE_OR):
            a, c = (layout.result_col(s) for s in self.src_slots)
            combined = b.and_([a, c]) if op is PimOpcode.COMBINE_AND else b.or_([a, c])
            b.copy_to(combined, result_col)
        elif op is PimOpcode.RESULT_NOT:
            (a,) = (layout.result_col(s) for s in self.src_slots)
            b.copy_to(b.not_(a), result_col)
        elif op is PimOpcode.ADD_FIELDS:
            a_bits = layout.field_cols(self.field_name)
            b_bits = layout.field_cols(self.field_b)
            sum_bits = b.add(a_bits, b_bits)
            # The sum lands in the scratch region (reported via aux_cols);
            # the carry-out goes to the result slot so callers can detect
            # per-row overflow.
            b.copy_to(sum_bits[-1], result_col)
            return b.program(result_col, aux_cols=sum_bits[:-1])
        else:  # pragma: no cover - exhaustive over enum
            raise ValueError(f"unknown opcode {op}")
        return b.program(result_col)

    @staticmethod
    def scan_range(field_name: str, lo: int, hi: int, slot: int = 0) -> "PimInstruction":
        """The YCSB short-range-scan predicate: ``lo <= field < hi``."""
        return PimInstruction(PimOpcode.SCAN_RANGE, field_name=field_name,
                              lo=lo, hi=hi, slot=slot)

    @staticmethod
    def scan_eq(field_name: str, value: int, slot: int = 0) -> "PimInstruction":
        return PimInstruction(PimOpcode.SCAN_EQ, field_name=field_name, lo=value,
                              slot=slot)

    @staticmethod
    def scan_lt(field_name: str, value: int, slot: int = 0) -> "PimInstruction":
        return PimInstruction(PimOpcode.SCAN_LT, field_name=field_name, lo=value,
                              slot=slot)

    @staticmethod
    def scan_ge(field_name: str, value: int, slot: int = 0) -> "PimInstruction":
        return PimInstruction(PimOpcode.SCAN_GE, field_name=field_name, lo=value,
                              slot=slot)

    @staticmethod
    def combine_and(a: int, b: int, dst: int) -> "PimInstruction":
        return PimInstruction(PimOpcode.COMBINE_AND, slot=dst, src_slots=(a, b))

    @staticmethod
    def combine_or(a: int, b: int, dst: int) -> "PimInstruction":
        return PimInstruction(PimOpcode.COMBINE_OR, slot=dst, src_slots=(a, b))


class ScopeLayout:
    """Column layout of one scope's crossbar group.

    Columns, left to right: key field, data fields, valid bit, result
    slots, scratch region.  :class:`PimInstruction.compile` resolves field
    names to column ranges through this object.
    """

    def __init__(self, schema: "RecordSchema", result_slots: int = 4,
                 scratch_cols: int = 0) -> None:
        from repro.pim.database import RecordSchema  # local: avoid cycle

        if not isinstance(schema, RecordSchema):  # pragma: no cover
            raise TypeError("schema must be a RecordSchema")
        self.schema = schema
        self.result_slots = result_slots
        self._field_cols: Dict[str, range] = {}
        col = 0
        for spec in schema.all_fields():
            self._field_cols[spec.name] = range(col, col + spec.bits)
            col += spec.bits
        self.valid_col = col
        col += 1
        self._result_first = col
        col += result_slots
        self.scratch_first = col
        if scratch_cols <= 0:
            # Generous default: comparator synthesis allocates one scratch
            # column per intermediate without recycling (a real controller
            # would recycle with extra INIT steps; column count is not the
            # bottleneck we study).
            scratch_cols = 16 * schema.max_field_bits() + 64
        self.scratch_limit = col + scratch_cols

    @property
    def total_cols(self) -> int:
        return self.scratch_limit

    def field_cols(self, name: Optional[str]) -> list:
        if name is None:
            raise ValueError("instruction needs a field name")
        try:
            return list(self._field_cols[name])
        except KeyError:
            raise KeyError(f"no field {name!r} in schema") from None

    def result_col(self, slot: int) -> int:
        if not 0 <= slot < self.result_slots:
            raise ValueError(f"result slot {slot} out of range")
        return self._result_first + slot
