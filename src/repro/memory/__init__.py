"""The host memory-subsystem substrate.

Structural pipeline (Fig. 5 of the paper)::

    core -> entry point -> private L1 -> shared request network -> inclusive
    LLC (MESI directory, scope buffer, SBV) -> memory controller -> PIM
    module / DRAM

* :mod:`repro.memory.cache` -- set-associative arrays with MESI line states.
* :mod:`repro.memory.mesi` -- MESI state machine helpers.
* :mod:`repro.memory.mshr` -- miss-status holding registers: the shared
  MSHR file (coalescing, hit-under-miss tracking) behind both caches'
  non-blocking miss handling.
* :mod:`repro.memory.l1` -- private first-level caches.
* :mod:`repro.memory.llc` -- the shared, inclusive LLC with directory,
  scope buffer, SBV, and the PIM-op scan/flush engine (Section IV).
* :mod:`repro.memory.scope_buffer` -- the scope buffer (Section IV-A).
* :mod:`repro.memory.sbv` -- the scope bit-vector (Section IV-B).
* :mod:`repro.memory.memory_controller` -- reordering memory controller
  that preserves same-address and same-scope dependencies (Section V-A).
* :mod:`repro.memory.versioned` -- the version-tagged memory image used by
  the stale-read (correctness) detector.
"""

from repro.memory.cache import CacheArray, CacheLine
from repro.memory.mesi import MesiState
from repro.memory.mshr import MshrEntry, MshrFile
from repro.memory.scope_buffer import ScopeBuffer
from repro.memory.sbv import ScopeBitVector
from repro.memory.versioned import VersionedMemory

__all__ = [
    "CacheArray",
    "CacheLine",
    "MesiState",
    "MshrEntry",
    "MshrFile",
    "ScopeBuffer",
    "ScopeBitVector",
    "VersionedMemory",
]
