"""The scope buffer (Section IV-A).

A small cache-like structure next to a cache, indexed by scope id, holding
entries for scopes whose lines were recently flushed from that cache.  A
PIM op that *hits* in the scope buffer skips the cache scan entirely; a
miss triggers a set-by-set scan and then inserts the scope.  When a line
from a PIM-enabled scope is *inserted* into the cache, its scope is erased
from the scope buffer (the cache may now hold lines of that scope again).

The hit rate this structure achieves is Fig. 9 of the paper.
"""

from __future__ import annotations

from typing import Dict, List

from repro.sim.stats import StatGroup


class ScopeBuffer:
    """Set-associative scope cache with LRU replacement.

    >>> sb = ScopeBuffer(sets=2, ways=1)
    >>> sb.lookup(3)
    False
    >>> sb.insert(3); sb.lookup(3)
    True
    >>> sb.invalidate(3); sb.lookup(3)
    False
    """

    def __init__(self, sets: int, ways: int, stats: StatGroup = None) -> None:
        if sets <= 0 or ways <= 0:
            raise ValueError("scope buffer geometry must be positive")
        self.sets = sets
        self.ways = ways
        self._entries: List[Dict[int, int]] = [dict() for _ in range(sets)]
        self._tick = 0
        self.stats = stats if stats is not None else StatGroup("scope_buffer")
        self._hit_rate = self.stats.ratio("hit_rate")

    def _set_of(self, scope: int) -> Dict[int, int]:
        return self._entries[scope % self.sets]

    def lookup(self, scope: int, record: bool = True) -> bool:
        """PIM-op lookup; ``record=False`` for non-accounting peeks."""
        entry_set = self._set_of(scope)
        hit = scope in entry_set
        if hit:
            self._tick += 1
            entry_set[scope] = self._tick
        if record:
            self._hit_rate.record(hit)
        return hit

    def insert(self, scope: int) -> None:
        """Insert after a completed scan; LRU-evicts silently when full.

        Eviction needs "no additional action" (Section IV-A) -- losing an
        entry only costs a redundant scan later, never correctness.
        """
        entry_set = self._set_of(scope)
        if scope not in entry_set and len(entry_set) >= self.ways:
            lru = min(entry_set, key=entry_set.get)
            del entry_set[lru]
        self._tick += 1
        entry_set[scope] = self._tick

    def invalidate(self, scope: int) -> None:
        """A line of ``scope`` was inserted into the cache: drop the entry."""
        self._set_of(scope).pop(scope, None)

    @property
    def hit_rate(self) -> float:
        return self._hit_rate.ratio

    def occupancy(self) -> int:
        return sum(len(s) for s in self._entries)

    # -- analytical area model (Section VI: 0.092% / 0.22% overheads) -- #

    def storage_bits(self, scope_tag_bits: int = 32) -> int:
        """SRAM bits: per entry, a scope tag + valid bit + LRU counter."""
        lru_bits = max(1, (self.ways - 1).bit_length())
        return self.sets * self.ways * (scope_tag_bits + 1 + lru_bits)
