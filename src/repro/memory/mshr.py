"""Miss-status holding registers (MSHRs): the non-blocking-cache core.

Both cache levels track outstanding line fills through one
:class:`MshrFile` -- a bounded map of line address to :class:`MshrEntry`.
A primary miss allocates an entry and the cache keeps serving younger
requests (*hit-under-miss*); secondary misses to an in-flight line
*coalesce* onto the existing entry instead of issuing a duplicate fetch;
the refill drains every coalesced waiter at once.  With ``coalescing``
disabled a secondary miss reports "busy" and the requester retries until
the refill lands, and with ``capacity=1`` the file degenerates to the
classic blocking cache -- the ablation baseline of the ``mlp-ablation``
campaign.

The file mirrors the reference non-blocking D-cache design this repo
tracks (synapse32 ``dcache_mshr.v``: basic tracking + request coalescing
+ hit-during-refill) minus its word-offset bookkeeping, which a
line-granular timing model does not need.

Hot-path conventions: the owning cache keeps a direct reference to
:attr:`MshrFile.entries` for the per-access ``get``; all counters are
plain ints bumped inline and exported to a :class:`~repro.sim.stats
.StatGroup` only when the owner opts in (``attach_stats``) -- the
default configuration emits no new stat keys, which is what keeps
default-config result digests byte-identical across this subsystem's
introduction.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.sim.messages import Message


class MshrEntry:
    """One outstanding line fill and the requests riding on it."""

    __slots__ = ("line_addr", "exclusive", "waiters")

    def __init__(self, line_addr: int, exclusive: bool) -> None:
        self.line_addr = line_addr
        #: The fill must grant write permission (a store is waiting).
        self.exclusive = exclusive
        #: Requests answered when the refill lands, in arrival order.
        self.waiters: List[Message] = []


class MshrFile:
    """A bounded file of MSHR entries keyed by line address.

    Args:
        capacity: maximum outstanding line fills; 1 models a blocking
            cache (every miss occupies the sole entry until its refill).
        coalescing: merge secondary misses onto the in-flight entry.
            Off, :meth:`coalesce` refuses and the cache back-pressures
            the request until the line's refill completes.
    """

    __slots__ = ("capacity", "coalescing", "entries", "coalesced_misses",
                 "hit_under_miss", "refills", "occupancy_total",
                 "occupancy_samples")

    def __init__(self, capacity: int, coalescing: bool = True) -> None:
        if capacity < 1:
            raise ValueError(f"MSHR file needs >= 1 entry, got {capacity}")
        self.capacity = capacity
        self.coalescing = coalescing
        #: line address -> in-flight entry.  Owners alias this dict for
        #: the hot-path lookup; mutate it only through the methods here.
        self.entries: Dict[int, MshrEntry] = {}
        # -- plain-int counters (see module docstring) ----------------- #
        self.coalesced_misses = 0
        #: Hits served while at least one miss was outstanding (the
        #: cache's owner bumps this inline; it lives here so one flush
        #: callback exports the whole MSHR story).
        self.hit_under_miss = 0
        self.refills = 0
        self.occupancy_total = 0
        self.occupancy_samples = 0

    @property
    def full(self) -> bool:
        return len(self.entries) >= self.capacity

    def get(self, line_addr: int) -> Optional[MshrEntry]:
        return self.entries.get(line_addr)

    def allocate(self, line_addr: int, exclusive: bool) -> MshrEntry:
        """Install a new entry (primary miss); samples occupancy *after*
        insertion, so the mean reflects entries in flight."""
        entry = MshrEntry(line_addr, exclusive)
        self.entries[line_addr] = entry
        self.occupancy_total += len(self.entries)
        self.occupancy_samples += 1
        return entry

    def coalesce(self, entry: MshrEntry, msg: Message,
                 exclusive: bool) -> bool:
        """Merge a secondary miss onto ``entry``; ``False`` refuses it
        (coalescing disabled) and the caller must back-pressure."""
        if not self.coalescing:
            return False
        entry.waiters.append(msg)
        if exclusive:
            entry.exclusive = True
        self.coalesced_misses += 1
        return True

    def complete(self, line_addr: int) -> Optional[MshrEntry]:
        """Retire the entry for a landed refill (``None`` if raced away)."""
        entry = self.entries.pop(line_addr, None)
        if entry is not None:
            self.refills += 1
        return entry

    # ------------------------------------------------------------------ #
    # stats export (opt-in: emitting new keys re-baselines digests)
    # ------------------------------------------------------------------ #

    def attach_stats(self, stats) -> None:
        """Register this file's counters on a ``StatGroup``.

        Adds ``mshr_occupancy`` (mean over allocations), ``mshr_refills``,
        ``coalesced_misses`` and ``hit_under_miss`` to the group's
        snapshots.  Call only for non-default MSHR configurations: a
        snapshot key that exists changes every pinned result digest.
        """
        occupancy = stats.mean("mshr_occupancy", extremes=False)
        refills = stats.counter("mshr_refills")
        coalesced = stats.counter("coalesced_misses")
        hum = stats.counter("hit_under_miss")

        def _flush() -> None:
            occupancy.total = self.occupancy_total
            occupancy.count = self.occupancy_samples
            refills.value = self.refills
            coalesced.value = self.coalesced_misses
            hum.value = self.hit_under_miss

        stats.register_flush(_flush)
