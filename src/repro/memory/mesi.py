"""MESI coherence states and legality helpers.

The evaluation system (Table II) uses a MESI protocol with an inclusive
shared LLC acting as the directory.  States live on cache lines
(:class:`repro.memory.cache.CacheLine`); the directory bookkeeping is in
:mod:`repro.memory.llc`.  This module keeps the state machine itself
explicit and unit-testable.
"""

from __future__ import annotations

import enum


class MesiState(enum.IntEnum):
    """Classic MESI states (IntEnum: cheap comparisons in the hot path)."""

    INVALID = 0
    SHARED = 1
    EXCLUSIVE = 2
    MODIFIED = 3

    @property
    def readable(self) -> bool:
        return self is not MesiState.INVALID

    @property
    def writable(self) -> bool:
        """May a store complete locally without a coherence transaction?"""
        return self in (MesiState.EXCLUSIVE, MesiState.MODIFIED)

    @property
    def dirty(self) -> bool:
        return self is MesiState.MODIFIED


def state_on_fill(exclusive: bool) -> MesiState:
    """State a private cache installs on a fill response."""
    return MesiState.EXCLUSIVE if exclusive else MesiState.SHARED


def state_after_store(state: MesiState) -> MesiState:
    """State transition when a store hits a writable line."""
    if not state.writable:
        raise ValueError(f"store cannot complete in state {state.name}")
    return MesiState.MODIFIED


# Transitions a directory may legally request of a sharer.
VALID_DOWNGRADES = {
    MesiState.MODIFIED: (MesiState.SHARED, MesiState.INVALID),
    MesiState.EXCLUSIVE: (MesiState.SHARED, MesiState.INVALID),
    MesiState.SHARED: (MesiState.INVALID,),
    MesiState.INVALID: (),
}
