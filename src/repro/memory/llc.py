"""The shared, inclusive last-level cache.

The LLC is the system's coherence directory (MESI, Table II) and the place
where the paper's coherency mechanism lives (Section IV): PIM ops arriving
at the LLC look up the *scope buffer*; on a miss they scan the cache --
visiting only the sets marked in the *scope bit-vector* (SBV) -- flushing
every line of their scope (invalidating L1 copies through the inclusive
directory and writing dirty data back to memory) before being forwarded to
the memory controller.  The scan blocks the LLC for its duration, exactly
the cost the scope buffer and SBV exist to avoid.

Scope fences (scope-relaxed model) run the same scan/flush and terminate
here with an ACK (Fig. 6d).  Naive/SW-Flush PIM ops pass through untouched
(``direct`` flag).  Uncacheable accesses pass through to the memory
controller without allocating.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Set, Tuple, Union

from repro.core.scope import ScopeMap
from repro.memory.cache import CacheArray, CacheLine
from repro.memory.mesi import MesiState
from repro.memory.mshr import MshrFile
from repro.memory.scope_buffer import ScopeBuffer
from repro.memory.sbv import ScopeBitVector
from repro.sim.component import Component, QueuedComponent
from repro.sim.config import CacheConfig, ScopeBufferConfig
from repro.sim.kernel import Simulator, WHEEL_MASK, WHEEL_SLOTS
from repro.sim.messages import Message, MessageType
from repro.sim.stats import StatGroup

_LOAD = MessageType.LOAD
_LOAD_RESP = MessageType.LOAD_RESP


class LastLevelCache(QueuedComponent):
    """Shared inclusive LLC with MESI directory, scope buffer and SBV."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        config: CacheConfig,
        scope_buffer_cfg: ScopeBufferConfig,
        scope_map: ScopeMap,
        mem_link: Component,
        resp_net: Component,
        mshr_count: int = 64,
        queue_capacity: int = 16,
        scope_buffer_enabled: bool = True,
        sbv_enabled: bool = True,
        coalescing: bool = True,
        emit_mshr_stats: bool = False,
    ) -> None:
        super().__init__(sim, name, capacity=queue_capacity, service_interval=1)
        self.config = config
        self.scope_map = scope_map
        self.mem_link = mem_link
        self.resp_net = resp_net
        self.array = CacheArray(config.num_sets, config.ways, config.line_bytes)
        self.stats = StatGroup(name)
        # Hit/miss counters are batched as plain ints and synced into the
        # StatGroup at snapshot time.
        self._hits = 0
        self._misses = 0
        self.stats.register_flush(self._flush_stats)
        self._scan_latency = self.stats.mean("scan_latency")
        self._flushed_lines = self.stats.counter("flushed_lines")
        self._hit_latency = config.hit_latency
        self._hit_on_wheel = 0 < config.hit_latency < WHEEL_SLOTS
        # Pre-bound callables for the per-request hot path.
        self._resp_offer = resp_net.offer
        self._mem_offer = mem_link.offer
        self.scope_buffer = ScopeBuffer(
            scope_buffer_cfg.sets, scope_buffer_cfg.ways, self.stats
        )
        self.sbv = ScopeBitVector(config.num_sets, self.stats)
        #: Ablation switches (Section IV motivates both structures by
        #: what scans cost without them).
        self.scope_buffer_enabled = scope_buffer_enabled
        self.sbv_enabled = sbv_enabled
        #: Private caches above this LLC, indexed by core id (set by the
        #: system builder; the directory back-invalidates through these).
        self.l1s: List = []
        self._dir: Dict[int, Set[int]] = {}
        self.mshr_count = mshr_count
        self.mshr_file = MshrFile(mshr_count, coalescing)
        #: Hot-path alias of the MSHR file's entry map.
        self._mshrs = self.mshr_file.entries
        if emit_mshr_stats:
            # Opt-in: the extra snapshot keys re-baseline result digests,
            # so only non-default MSHR configurations export them.
            self.mshr_file.attach_stats(self.stats)
        self._pending_wbs: deque = deque()
        self._head_scanned = False
        #: Stall-attribution bucket (Tracer-owned dict) when tracing.
        self._stalls = None

    def _flush_stats(self) -> None:
        stats = self.stats
        stats.counter("hits").value = self._hits
        stats.counter("misses").value = self._misses

    # ------------------------------------------------------------------ #
    # request handling
    # ------------------------------------------------------------------ #

    def handle(self, msg: Message) -> Union[bool, int]:
        mtype = msg.mtype
        if mtype is _LOAD:
            if msg.uncacheable:
                return self._forward_mem(msg)
            # Flattened fetch-hit path (the LLC's hottest message).
            line = self.array.lookup(msg.addr)
            if line is None:
                return self._fetch_miss(msg)
            self._hits += 1
            if self._mshrs:
                self.mshr_file.hit_under_miss += 1
            sharers = self._dir.setdefault(line.addr, set())
            if msg.exclusive:
                self._invalidate_sharers(line, except_core=msg.core)
                sharers.clear()
                sharers.add(msg.core)
            else:
                # A modified owner must supply fresh data and downgrade.
                for core in list(sharers):
                    if core != msg.core:
                        dirty, version = self.l1s[core].downgrade_to_shared(
                            line.addr)
                        if dirty and version > line.version:
                            line.version = version
                            line.state = MesiState.MODIFIED
                sharers.add(msg.core)
            resp = msg.make_response(_LOAD_RESP, line.version)
            if self._hit_on_wheel:
                # Inlined Simulator.schedule (wheel tier).
                sim = self.sim
                sim._seq = seq = sim._seq + 1
                sim._wheel[(sim.now + self._hit_latency) & WHEEL_MASK].append(
                    (seq, self._resp_offer, (resp, None)))
                sim._wheel_count += 1
            else:
                self.sim.schedule(self._hit_latency, self._resp_offer,
                                  resp, None)
            return True
        if mtype is MessageType.STORE:
            # Cached stores never reach the LLC as STOREs (they become
            # exclusive LOAD fetches at the L1); only uncacheable stores do.
            return self._forward_mem(msg)
        if mtype is MessageType.WRITEBACK:
            return self._handle_writeback(msg)
        if mtype is MessageType.FLUSH:
            return self._handle_flush(msg)
        if mtype is MessageType.PIM_OP:
            if msg.direct:
                return self._forward_mem(msg)
            return self._handle_pim_op(msg)
        if mtype is MessageType.SCOPE_FENCE:
            return self._handle_scope_fence(msg)
        raise ValueError(f"LLC cannot handle {mtype}")

    # -- loads / fetches (GetS / GetM from the L1s) --------------------- #

    def _fetch_miss(self, msg: Message) -> Union[bool, int]:
        self._misses += 1
        line_addr = self.array.line_addr(msg.addr)
        mshr_file = self.mshr_file
        mshr = self._mshrs.get(line_addr)
        if mshr is not None:
            # Secondary miss: coalesce onto the in-flight memory fetch
            # (works even with the file full -- no new entry needed);
            # with coalescing off the line is busy until its refill.
            if mshr_file.coalesce(mshr, msg, msg.exclusive):
                return True
            return 4
        if mshr_file.full:
            stalls = self._stalls
            if stalls is not None:
                stalls["mshr_full"] = stalls.get("mshr_full", 0) + 4
            return 4
        fetch = Message(MessageType.LOAD, line_addr, msg.scope, msg.core,
                        self)
        if not self._mem_offer(fetch, self):
            return False
        mshr_file.allocate(line_addr, msg.exclusive).waiters.append(msg)
        return True

    def receive_response(self, resp: Message) -> None:
        """A memory fill: install, then answer the waiting L1 fetches."""
        line_addr = resp.addr
        mshr = self.mshr_file.complete(line_addr)
        if mshr is None:
            resp.release()
            return
        scope = resp.scope
        line = self._install(line_addr, scope, resp.version)
        # The response is consumed; recycle it before answering the
        # waiters (which draws from the same pool).
        resp.release()
        sharers = self._dir.setdefault(line_addr, set())
        for waiter in mshr.waiters:
            if waiter.mtype is _LOAD and not waiter.exclusive:
                sharers.add(waiter.core)
                self._respond(waiter, _LOAD_RESP, line.version)
            else:
                self._invalidate_sharers(line, except_core=waiter.core)
                sharers.clear()
                sharers.add(waiter.core)
                self._respond(waiter, _LOAD_RESP, line.version)

    def _install(self, line_addr: int, scope: Optional[int], version: int) -> CacheLine:
        victim = self.array.victim(line_addr)
        if victim is not None:
            self._evict(victim)
        pim = scope is not None
        line = self.array.fill(line_addr, MesiState.EXCLUSIVE, version, scope, pim)
        if pim:
            self.sbv.mark(self.array.set_index(line_addr))
            # A line of this scope is cached again: the scope buffer entry
            # is no longer a valid "scope is flushed" witness.
            self.scope_buffer.invalidate(scope)
        return line

    def _evict(self, victim: CacheLine) -> None:
        """Inclusive eviction: purge L1 copies, write back if dirty."""
        dirty, version = self._recall_line(victim)
        index = self.array.set_index(victim.addr)
        self.array.remove(victim.addr)
        self._dir.pop(victim.addr, None)
        if victim.pim:
            self.sbv.update_on_eviction(index, self.array.set_has_pim_line(index))
        if dirty:
            self._queue_writeback(victim.addr, victim.scope, version)

    def _recall_line(self, line: CacheLine) -> Tuple[bool, int]:
        """Invalidate all L1 copies; merge any modified data."""
        version = line.version
        dirty = line.dirty
        for core in self._dir.get(line.addr, ()):
            l1_dirty, l1_version = self.l1s[core].back_invalidate(line.addr)
            if l1_dirty and l1_version > version:
                version = l1_version
                dirty = True
        return dirty, version

    def _invalidate_sharers(self, line: CacheLine, except_core: int) -> None:
        sharers = self._dir.get(line.addr, set())
        for core in list(sharers):
            if core == except_core:
                continue
            dirty, version = self.l1s[core].back_invalidate(line.addr)
            if dirty and version > line.version:
                line.version = version
                line.state = MesiState.MODIFIED
            sharers.discard(core)

    # -- writebacks and flushes ----------------------------------------- #

    def _handle_writeback(self, msg: Message) -> bool:
        line = self.array.lookup(msg.addr, touch=False)
        if line is not None:
            if msg.version > line.version:
                line.version = msg.version
            line.state = MesiState.MODIFIED
            sharers = self._dir.get(line.addr)
            if sharers is not None:
                sharers.discard(msg.core)
            msg.release()  # absorbed: writebacks get no response
            return True
        # Inclusive-violation race (we already evicted): pass to memory.
        return self._forward_mem(msg)

    def _handle_flush(self, msg: Message) -> Union[bool, int]:
        """clflush: purge the line everywhere, write back, ACK the core."""
        line = self.array.lookup(msg.addr, touch=False)
        version = msg.version  # dirty data the L1 attached, if any
        dirty = version > 0
        if line is not None:
            line_dirty, line_version = self._recall_line(line)
            index = self.array.set_index(line.addr)
            self.array.remove(line.addr)
            self._dir.pop(line.addr, None)
            if line.pim:
                self.sbv.update_on_eviction(index, self.array.set_has_pim_line(index))
            if line_dirty and line_version > version:
                version = line_version
            dirty = dirty or line_dirty
        if dirty:
            wb = Message.acquire(MessageType.WRITEBACK, addr=msg.addr,
                                 scope=msg.scope, core=msg.core,
                                 version=version)
            if not self._mem_offer(wb, self):
                return False
        self._respond(msg, MessageType.FLUSH_ACK, version)
        return True

    # -- PIM ops and scope fences (Section IV) --------------------------- #

    def _handle_pim_op(self, msg: Message) -> Union[bool, int]:
        if not self._head_scanned:
            if self._scope_fetch_in_flight(msg.scope):
                return 4
            self._head_scanned = True
            latency = self._scan_or_skip(msg.scope)
            if latency:
                return latency
        if not self._drain_writebacks():
            return False
        if not self._mem_offer(msg, self):
            return False
        return True

    def _handle_scope_fence(self, msg: Message) -> Union[bool, int]:
        if not self._head_scanned:
            if self._scope_fetch_in_flight(msg.scope):
                return 4
            self._head_scanned = True
            latency = self._scan_or_skip(msg.scope)
            if latency:
                return latency
        if not self._drain_writebacks():
            return False
        # The scope-fence terminates at the LLC (Fig. 6d).
        self._respond(msg, MessageType.SCOPE_FENCE_ACK, 0)
        return True

    def _scope_fetch_in_flight(self, scope: int) -> bool:
        """Is a memory fetch for a line of ``scope`` still outstanding?

        The scan/flush must cover such lines, but they are not in the
        array yet -- their fill would re-install pre-PIM data *after*
        the flush and serve it to post-flush readers (a stale-read
        window a racing core opens; the issuing core itself drains its
        same-scope accesses before a PIM op or fence).  The flush point
        therefore stalls at the head of the queue until those fills
        land; fills bypass the service queue, so the wait always
        terminates, and no new fetch can slip in past the blocked head.
        """
        scope_id_of = self.scope_map.scope_id_of
        for line_addr in self._mshrs:
            if scope_id_of(line_addr) == scope:
                return True
        return False

    def _scan_or_skip(self, scope: int) -> int:
        """Scope-buffer lookup; on miss, scan+flush and return the latency.

        The flush's directory work happens here (state changes are
        immediate); the returned latency models the set-by-set scan that
        blocks the LLC (Fig. 10c counts scope-buffer hits as zero-cycle
        scans).
        """
        if self.scope_buffer_enabled and self.scope_buffer.lookup(scope):
            self._scan_latency.sample(0)
            return 0
        if self.sbv_enabled:
            set_indices = self.sbv.sets_to_scan()
        else:
            set_indices = list(range(self.array.num_sets))
        self.sbv.record_scan(len(set_indices))
        latency = max(1, len(set_indices) * self.config.scan_cycles_per_set)
        self._scan_latency.sample(latency)
        take = self.array.take_scope_lines
        update = self.sbv.update_on_eviction
        for index in set_indices:
            flushed, has_pim = take(index, scope)
            for line in flushed:
                dirty, version = self._recall_line(line)
                self._dir.pop(line.addr, None)
                self._flushed_lines.value += 1
                if dirty:
                    self._queue_writeback(line.addr, line.scope, version)
            update(index, has_pim)
        self.scope_buffer.insert(scope)
        return latency

    def on_dequeue(self) -> None:
        self._head_scanned = False

    # -- plumbing --------------------------------------------------------- #

    def _queue_writeback(self, addr: int, scope: Optional[int], version: int) -> None:
        self._pending_wbs.append(
            Message.acquire(MessageType.WRITEBACK, addr=addr, scope=scope,
                            version=version)
        )
        self._drain_writebacks()

    def _drain_writebacks(self) -> bool:
        while self._pending_wbs:
            if not self._mem_offer(self._pending_wbs[0], self):
                return False
            self._pending_wbs.popleft()
        return True

    def unblock(self) -> None:
        self._drain_writebacks()
        super().unblock()

    def _forward_mem(self, msg: Message) -> bool:
        return self._mem_offer(msg, self)

    def _respond(self, req: Message, mtype: MessageType, version: int) -> None:
        resp = req.make_response(mtype, version=version)
        if self._hit_on_wheel:
            # Inlined Simulator.schedule (wheel tier).
            sim = self.sim
            sim._seq = seq = sim._seq + 1
            sim._wheel[(sim.now + self._hit_latency) & WHEEL_MASK].append(
                (seq, self._resp_offer, (resp, None)))
            sim._wheel_count += 1
        else:
            self.sim.schedule(self._hit_latency, self._resp_offer,
                              resp, None)
