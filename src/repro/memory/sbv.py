"""The scope bit-vector (SBV, Section IV-B).

One bit per cache set; a bit is high iff its set holds at least one line
from *some* PIM-enabled scope.  A scope scan then visits only the high
sets.  Bits are set on PIM-line insertion; on PIM-line eviction the
remaining lines of the set are re-checked and the bit cleared if none is
PIM (that re-check is the hardware cost the paper accepts for precision).

The mean skipped-set ratio during scans is Fig. 10d / Fig. 12c.
"""

from __future__ import annotations

from typing import List, Set

from repro.sim.stats import StatGroup


class ScopeBitVector:
    """Tracks which cache sets may contain PIM-enabled lines.

    Hardware is one bit per set; the model keeps the *high* bits in a
    set of indices instead of a dense bool list, so enumerating the
    sets a scan must visit costs O(marked) rather than O(num_sets) --
    scans are the simulator's single most expensive handler.
    """

    def __init__(self, num_sets: int, stats: StatGroup = None) -> None:
        if num_sets <= 0:
            raise ValueError("need at least one set")
        self.num_sets = num_sets
        self._marked: Set[int] = set()
        self.stats = stats if stats is not None else StatGroup("sbv")
        self._skip_ratio = self.stats.ratio("skipped_set_ratio")

    def mark(self, set_index: int) -> None:
        """A PIM line was inserted into ``set_index``."""
        self._marked.add(set_index)

    def update_on_eviction(self, set_index: int, set_still_has_pim: bool) -> None:
        """A PIM line left ``set_index``; re-check the set's remaining lines."""
        if set_still_has_pim:
            self._marked.add(set_index)
        else:
            self._marked.discard(set_index)

    def is_marked(self, set_index: int) -> bool:
        return set_index in self._marked

    def sets_to_scan(self) -> List[int]:
        """Set indices a scope scan must visit (the high bits), ascending."""
        return sorted(self._marked)

    def record_scan(self, scanned: int) -> None:
        """Account one scan: ``scanned`` sets visited out of ``num_sets``."""
        self._skip_ratio.add(self.num_sets - scanned, self.num_sets)

    @property
    def mean_skipped_ratio(self) -> float:
        return self._skip_ratio.ratio

    def popcount(self) -> int:
        return len(self._marked)

    # -- analytical area model ------------------------------------------ #

    def storage_bits(self) -> int:
        return self.num_sets
