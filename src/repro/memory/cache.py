"""Set-associative cache arrays with MESI line states and LRU replacement.

:class:`CacheArray` is pure bookkeeping -- geometry, lookup, fill, evict --
with no timing; the L1 and LLC components wrap it with queues and
latencies.  Lines carry a *version* tag instead of data bytes (see
DESIGN.md): the stale-read detector compares the version a load observes
with the version the last program-order-preceding PIM op produced.

Lines also carry a ``pim`` flag (the line belongs to a PIM-enabled scope),
which is what feeds the scope bit-vector (Section IV-B: the page-table
marks PIM-enabled pages and the marking travels with each request).
"""

from __future__ import annotations

import operator
from typing import Dict, Iterable, List, Optional

from repro.memory.mesi import MesiState

_by_tick = operator.attrgetter("tick")


class CacheLine:
    """One cache line's metadata."""

    __slots__ = ("addr", "state", "version", "scope", "pim", "tick")

    def __init__(self, addr: int, state: MesiState, version: int,
                 scope: Optional[int], pim: bool) -> None:
        self.addr = addr
        self.state = state
        self.version = version
        self.scope = scope
        self.pim = pim
        self.tick = 0

    @property
    def dirty(self) -> bool:
        return self.state is MesiState.MODIFIED

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Line {self.addr:#x} {self.state.name} v{self.version}"
                f"{' pim' if self.pim else ''}>")


class CacheArray:
    """Geometry + content of one cache level (no timing).

    Addresses are byte addresses; lines are ``line_bytes`` wide and the
    set index is the classic ``(addr / line_bytes) % num_sets``.
    """

    def __init__(self, num_sets: int, ways: int, line_bytes: int = 64) -> None:
        if num_sets <= 0 or ways <= 0:
            raise ValueError("cache geometry must be positive")
        if line_bytes & (line_bytes - 1):
            raise ValueError("line size must be a power of two")
        self.num_sets = num_sets
        self.ways = ways
        self.line_bytes = line_bytes
        self._line_shift = line_bytes.bit_length() - 1
        self._line_mask = ~(line_bytes - 1)
        self._sets: List[Dict[int, CacheLine]] = [dict() for _ in range(num_sets)]
        self._tick = 0

    # -- address helpers ---------------------------------------------- #

    def line_addr(self, addr: int) -> int:
        return addr & self._line_mask

    def set_index(self, addr: int) -> int:
        return (addr >> self._line_shift) % self.num_sets

    # -- lookup / update ------------------------------------------------ #

    def lookup(self, addr: int, touch: bool = True) -> Optional[CacheLine]:
        """Find the line holding ``addr`` (bumping LRU unless ``touch=False``)."""
        line = self._sets[(addr >> self._line_shift) % self.num_sets].get(
            addr & self._line_mask
        )
        if line is None or line.state is MesiState.INVALID:
            return None
        if touch:
            self._tick = tick = self._tick + 1
            line.tick = tick
        return line

    def fill(self, addr: int, state: MesiState, version: int,
             scope: Optional[int], pim: bool) -> CacheLine:
        """Install a line (caller must have made room with :meth:`victim`)."""
        line_addr = addr & self._line_mask
        cache_set = self._sets[(addr >> self._line_shift) % self.num_sets]
        if len(cache_set) >= self.ways and line_addr not in cache_set:
            raise RuntimeError(f"set {self.set_index(addr)} full; evict first")
        line = CacheLine(line_addr, state, version, scope, pim)
        self._tick = line.tick = self._tick + 1
        cache_set[line_addr] = line
        return line

    def victim(self, addr: int) -> Optional[CacheLine]:
        """The line to evict to make room for ``addr`` (None if room exists)."""
        cache_set = self._sets[(addr >> self._line_shift) % self.num_sets]
        if len(cache_set) < self.ways:
            return None
        return min(cache_set.values(), key=_by_tick)

    def remove(self, addr: int) -> Optional[CacheLine]:
        """Drop the line holding ``addr`` entirely (invalidation)."""
        line_addr = self.line_addr(addr)
        return self._sets[self.set_index(addr)].pop(line_addr, None)

    # -- scans ------------------------------------------------------------ #

    def lines_in_set(self, index: int) -> Iterable[CacheLine]:
        return list(self._sets[index].values())

    def take_scope_lines(self, index: int, scope: int):
        """Remove and return this set's lines of ``scope``, in one pass.

        Also reports whether any PIM-enabled line *remains* in the set
        (the SBV re-check of Section IV-B), fused into the same walk --
        the per-set scan is the LLC's hottest handler by far.

        Returns ``(removed_lines, set_still_has_pim)``.
        """
        cache_set = self._sets[index]
        matches = None
        has_pim = False
        for line in cache_set.values():
            if line.scope == scope:
                if matches is None:
                    matches = [line]
                else:
                    matches.append(line)
            elif line.pim:
                has_pim = True
        if matches is None:
            return (), has_pim
        for line in matches:
            del cache_set[line.addr]
        return matches, has_pim

    def set_has_pim_line(self, index: int) -> bool:
        """Does this set still hold any line from a PIM-enabled scope?

        Used to clear SBV bits on eviction (Section IV-B: "all remaining
        cache-lines in the same set are checked").
        """
        return any(l.pim for l in self._sets[index].values())

    def scope_lines(self, scope: int) -> List[CacheLine]:
        """All cached lines of one scope (testing/verification aid)."""
        return [l for s in self._sets for l in s.values() if l.scope == scope]

    def occupancy(self) -> int:
        return sum(len(s) for s in self._sets)
