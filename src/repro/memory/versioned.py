"""Version-tagged memory image for the stale-read detector.

Instead of simulating 64 data bytes per line, the timing model tracks a
monotonically increasing *version* per line.  Stores bump the stored
version; a PIM op execution bumps the versions of every line it writes
(its result-bitmap lines).  A load response carries the version of the
data it observed, and the workload driver knows which version a
program-order-correct execution must observe -- anything older is a
*stale read*, i.e. exactly the correctness violation of Section I.
"""

from __future__ import annotations

from typing import Dict, Iterable


class VersionedMemory:
    """The main-memory image: line address -> version."""

    def __init__(self, line_bytes: int = 64) -> None:
        self.line_bytes = line_bytes
        self._line_mask = ~(line_bytes - 1)
        self._versions: Dict[int, int] = {}

    def line_addr(self, addr: int) -> int:
        return addr & self._line_mask

    def read(self, addr: int) -> int:
        return self._versions.get(addr & self._line_mask, 0)

    def write(self, addr: int, version: int) -> None:
        """A writeback/store installs data of the given version.

        Writes never roll a line's version backwards: an in-flight stale
        writeback must not erase a newer PIM result (the PIM module and
        the memory controller preserve same-scope dependency order, so
        this models the array's last-writer-wins at line granularity).
        """
        line = addr & self._line_mask
        if version > self._versions.get(line, 0):
            self._versions[line] = version

    def bump(self, addr: int) -> int:
        """In-place increment (host store directly to memory)."""
        line = addr & self._line_mask
        version = self._versions.get(line, 0) + 1
        self._versions[line] = version
        return version

    def bump_lines(self, addrs: Iterable[int], version: int) -> None:
        """A PIM op wrote these lines with data of ``version``."""
        for addr in addrs:
            self.write(addr, version)
