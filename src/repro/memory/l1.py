"""Private first-level caches.

Each core owns one L1.  Loads and stores arrive from the core's entry
point; misses allocate MSHRs and fetch from the LLC over the shared
request network.  The LLC (the inclusive directory) may *back-invalidate*
lines at any time -- modelled as a zero-latency state change whose cost is
folded into the LLC-side scan/flush latency, a deliberate
cycle-approximate simplification (DESIGN.md).

Under the scope-relaxed model the L1 also hosts a scope buffer and SBV and
participates in scope-fence scans (Section V-E); under all other models
PIM ops bypass the L1 entirely.
"""

from __future__ import annotations

from collections import deque
from typing import List, Optional, Tuple, Union

from repro.core.scope import ScopeMap
from repro.memory.cache import CacheArray
from repro.memory.mesi import MesiState, state_on_fill
from repro.memory.mshr import MshrFile
from repro.memory.scope_buffer import ScopeBuffer
from repro.memory.sbv import ScopeBitVector
from repro.sim.component import Component, QueuedComponent
from repro.sim.config import CacheConfig, ScopeBufferConfig
from repro.sim.kernel import Simulator, WHEEL_MASK, WHEEL_SLOTS
from repro.sim.messages import Message, MessageType
from repro.sim.stats import StatGroup

#: Store-hit fast path: IntEnum ordering makes "writable" a plain int
#: compare (EXCLUSIVE=2, MODIFIED=3; lookup() never returns INVALID).
_EXCLUSIVE = MesiState.EXCLUSIVE
_LOAD = MessageType.LOAD
_STORE = MessageType.STORE
_LOAD_RESP = MessageType.LOAD_RESP
_STORE_ACK = MessageType.STORE_ACK


class L1Cache(QueuedComponent):
    """One core's private L1.

    Args:
        req_net: the shared request network toward the LLC.
        scope_map: address-to-scope mapping (marks PIM-enabled lines).
        scope_buffer_cfg: present only under the scope-relaxed model.
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        core_id: int,
        config: CacheConfig,
        scope_map: ScopeMap,
        req_net: Component,
        scope_buffer_cfg: Optional[ScopeBufferConfig] = None,
        mshr_count: int = 8,
        queue_capacity: int = 8,
        coalescing: bool = True,
        emit_mshr_stats: bool = False,
    ) -> None:
        super().__init__(sim, name, capacity=queue_capacity, service_interval=1)
        self.core_id = core_id
        self.config = config
        self.scope_map = scope_map
        self.req_net = req_net
        self.array = CacheArray(config.num_sets, config.ways, config.line_bytes)
        self.mshr_count = mshr_count
        self.mshr_file = MshrFile(mshr_count, coalescing)
        #: Hot-path alias of the MSHR file's entry map.
        self._mshrs = self.mshr_file.entries
        self.stats = StatGroup(name)
        if emit_mshr_stats:
            # Opt-in: the extra snapshot keys re-baseline result digests,
            # so only non-default MSHR configurations export them.
            self.mshr_file.attach_stats(self.stats)
        # Hit/miss counters are batched as plain ints (one attribute bump
        # per access) and synced into the StatGroup at snapshot time.
        self._hits = 0
        self._misses = 0
        self.stats.register_flush(self._flush_stats)
        self._back_invalidations = self.stats.counter("back_invalidations")
        self.scope_buffer: Optional[ScopeBuffer] = None
        self.sbv: Optional[ScopeBitVector] = None
        if scope_buffer_cfg is not None:
            self.scope_buffer = ScopeBuffer(
                scope_buffer_cfg.sets, scope_buffer_cfg.ways, self.stats
            )
            self.sbv = ScopeBitVector(config.num_sets, self.stats)
        self._scan_latency = self.stats.mean("scan_latency", extremes=False)
        self._hit_latency = config.hit_latency
        # Writebacks and upgrade re-fetches waiting for network space
        # (fill-path actions cannot block the response path, so they
        # drain opportunistically).
        self._wb_queue: deque = deque()
        self._refetch_queue: deque = deque()
        # Multi-phase state for the head-of-queue scope fence.
        self._head_scanned = False
        self._hit_on_wheel = 0 < config.hit_latency < WHEEL_SLOTS
        # Pre-bound callable for the miss/forward hot path.
        self._req_offer = req_net.offer
        #: Stall-attribution bucket (Tracer-owned dict) when tracing.
        self._stalls = None

    def _flush_stats(self) -> None:
        stats = self.stats
        stats.counter("hits").value = self._hits
        stats.counter("misses").value = self._misses

    # ------------------------------------------------------------------ #
    # request handling
    # ------------------------------------------------------------------ #

    def handle(self, msg: Message) -> Union[bool, int]:
        mtype = msg.mtype
        # Loads and stores are the simulator's hottest messages: their
        # hit paths are flattened here (lookup + pooled response +
        # inlined wheel-tier Simulator.schedule) rather than dispatched
        # through the per-type helpers.
        if mtype is _LOAD:
            line = self.array.lookup(msg.addr)
            if line is None:
                return self._miss(msg, False)
            self._hits += 1
            if self._mshrs:
                self.mshr_file.hit_under_miss += 1
            resp = msg.make_response(_LOAD_RESP, line.version)
            if self._hit_on_wheel:
                sim = self.sim
                sim._seq = seq = sim._seq + 1
                sim._wheel[(sim.now + self._hit_latency) & WHEEL_MASK].append(
                    (seq, resp.reply_to.receive_response, (resp,)))
                sim._wheel_count += 1
            else:
                self.sim.schedule(self._hit_latency,
                                  resp.reply_to.receive_response, resp)
            return True
        if mtype is _STORE:
            line = self.array.lookup(msg.addr)
            if line is not None and line.state >= _EXCLUSIVE:
                self._hits += 1
                if self._mshrs:
                    self.mshr_file.hit_under_miss += 1
                line.state = MesiState.MODIFIED
                line.version += 1
                resp = msg.make_response(_STORE_ACK, line.version)
                if self._hit_on_wheel:
                    sim = self.sim
                    sim._seq = seq = sim._seq + 1
                    sim._wheel[
                        (sim.now + self._hit_latency) & WHEEL_MASK
                    ].append((seq, resp.reply_to.receive_response, (resp,)))
                    sim._wheel_count += 1
                else:
                    self.sim.schedule(self._hit_latency,
                                      resp.reply_to.receive_response, resp)
                return True
            # Shared hit (upgrade) or miss: fetch exclusive ownership.
            return self._miss(msg, True)
        if mtype is MessageType.FLUSH:
            return self._handle_flush(msg)
        if mtype is MessageType.PIM_OP:
            # Scope-relaxed routes PIM ops through every cache level
            # without flushing them (Fig. 6c); other models never send
            # PIM ops here.
            return self._forward(msg)
        if mtype is MessageType.SCOPE_FENCE:
            return self._handle_scope_fence(msg)
        raise ValueError(f"L1 cannot handle {mtype}")

    def _miss(self, msg: Message, exclusive: bool) -> Union[bool, int]:
        self._misses += 1
        line_addr = self.array.line_addr(msg.addr)
        mshr_file = self.mshr_file
        mshr = self._mshrs.get(line_addr)
        if mshr is not None:
            # Secondary miss: piggyback on the in-flight fill (an
            # exclusive need on a shared fetch re-requests at fill
            # time).  With coalescing disabled the line is "busy":
            # back-pressure until the refill lands.
            if mshr_file.coalesce(mshr, msg, exclusive):
                return True
            return 4
        if mshr_file.full:
            stalls = self._stalls
            if stalls is not None:
                stalls["mshr_full"] = stalls.get("mshr_full", 0) + 4
            return 4  # all MSHRs busy; retry shortly
        fill_req = Message(MessageType.LOAD, line_addr, msg.scope,
                           self.core_id, self, exclusive)
        if not self._req_offer(fill_req, self):
            return False
        mshr_file.allocate(line_addr, exclusive).waiters.append(msg)
        return True

    def _handle_flush(self, msg: Message) -> Union[bool, int]:
        """clflush: drop the local copy and forward to the LLC."""
        line = self.array.lookup(msg.addr, touch=False)
        if line is not None:
            if line.dirty:
                # Carry the dirty version with the flush; the LLC merges it
                # into its own copy before writing back to memory.
                msg.version = max(msg.version, line.version)
            self._invalidate_line(line)
        return self._forward(msg)

    def _handle_scope_fence(self, msg: Message) -> Union[bool, int]:
        """Scope-fence: scan/flush this cache, then continue to the LLC."""
        if not self._head_scanned:
            self._head_scanned = True
            latency, wbs = self._scan_and_flush_scope(msg.scope)
            self._wb_queue.extend(wbs)
            if latency:
                return latency
        if not self._drain_writebacks():
            return False
        return self._forward(msg)

    def _forward(self, msg: Message) -> bool:
        return self._req_offer(msg, self)

    def on_dequeue(self) -> None:
        self._head_scanned = False

    # ------------------------------------------------------------------ #
    # scan/flush machinery (scope-relaxed model only)
    # ------------------------------------------------------------------ #

    def _scan_and_flush_scope(self, scope: int) -> Tuple[int, List[Message]]:
        """Returns ``(scan_latency, writeback messages)``."""
        if self.scope_buffer is not None and self.scope_buffer.lookup(scope):
            self._scan_latency.sample(0)
            return 0, []
        if self.sbv is not None:
            set_indices = self.sbv.sets_to_scan()
            self.sbv.record_scan(len(set_indices))
        else:
            set_indices = list(range(self.array.num_sets))
        latency = max(1, len(set_indices) * self.config.scan_cycles_per_set)
        self._scan_latency.sample(latency)
        wbs = []
        take = self.array.take_scope_lines
        for index in set_indices:
            flushed, has_pim = take(index, scope)
            for line in flushed:
                if line.dirty:
                    wbs.append(self._writeback_msg(line))
            if self.sbv is not None:
                self.sbv.update_on_eviction(index, has_pim)
        if self.scope_buffer is not None:
            self.scope_buffer.insert(scope)
        return latency, wbs

    def _writeback_msg(self, line) -> Message:
        return Message.acquire(
            MessageType.WRITEBACK,
            addr=line.addr,
            scope=line.scope,
            core=self.core_id,
            version=line.version,
        )

    def _drain_writebacks(self) -> bool:
        while self._wb_queue:
            if not self._req_offer(self._wb_queue[0], self):
                return False
            self._wb_queue.popleft()
        return True

    def _drain_refetches(self) -> bool:
        while self._refetch_queue:
            if not self._req_offer(self._refetch_queue[0], self):
                return False
            self._refetch_queue.popleft()
        return True

    def unblock(self) -> None:
        # The network freed space: first flush pending writebacks and
        # upgrade re-fetches, then resume normal service.
        self._drain_writebacks()
        self._drain_refetches()
        super().unblock()

    # ------------------------------------------------------------------ #
    # fill path (responses from the LLC)
    # ------------------------------------------------------------------ #

    def receive_response(self, resp: Message) -> None:
        """A fill from the LLC: install the line and release waiters."""
        line_addr = resp.addr
        mshr = self.mshr_file.complete(line_addr)
        if mshr is None:
            # Fill for a line whose waiters were already satisfied.
            resp.release()
            return
        req = resp.req
        exclusive = req.exclusive if req is not None else mshr.exclusive
        scope = resp.scope
        self._install(line_addr, scope, resp.version, exclusive)
        # The response is consumed; recycle it before answering the
        # waiters (which draws from the same pool).
        resp.release()
        retry: List[Message] = []
        line = self.array.lookup(line_addr, touch=False)
        for waiter in mshr.waiters:
            if waiter.mtype is _LOAD:
                self._respond(waiter, _LOAD_RESP, line.version)
            elif line is not None and line.state.writable:
                line.state = MesiState.MODIFIED
                line.version += 1
                self._respond(waiter, _STORE_ACK, line.version)
            else:
                retry.append(waiter)  # needed exclusivity, fill was shared
        if retry:
            # Upgrade: re-fetch the line with ownership for the stranded
            # store waiters (a shared fill raced a piggybacked store).
            self.mshr_file.allocate(line_addr, True).waiters = retry
            fill_req = Message(
                MessageType.LOAD,
                addr=line_addr,
                scope=scope,
                core=self.core_id,
                reply_to=self,
                exclusive=True,
            )
            self._refetch_queue.append(fill_req)
            self._drain_refetches()

    def _install(self, line_addr: int, scope: Optional[int], version: int,
                 exclusive: bool) -> None:
        victim = self.array.victim(line_addr)
        if victim is not None:
            if victim.dirty:
                self._wb_queue.append(self._writeback_msg(victim))
                self._drain_writebacks()
            self._invalidate_line(victim)
        pim = scope is not None
        self.array.fill(line_addr, state_on_fill(exclusive), version, scope, pim)
        if pim:
            if self.sbv is not None:
                self.sbv.mark(self.array.set_index(line_addr))
            if self.scope_buffer is not None:
                self.scope_buffer.invalidate(scope)

    def _invalidate_line(self, line) -> None:
        index = self.array.set_index(line.addr)
        self.array.remove(line.addr)
        if self.sbv is not None and line.pim:
            self.sbv.update_on_eviction(index, self.array.set_has_pim_line(index))

    # ------------------------------------------------------------------ #
    # directory-initiated actions (called by the LLC)
    # ------------------------------------------------------------------ #

    def back_invalidate(self, addr: int) -> Tuple[bool, int]:
        """Invalidate a line on the directory's order.

        Returns ``(was_dirty, version)`` so the LLC can merge modified
        data.  Zero-latency by design (see module docstring).
        """
        line = self.array.lookup(addr, touch=False)
        if line is None:
            return False, 0
        self._back_invalidations.add()
        self._invalidate_line(line)
        return line.dirty, line.version

    def downgrade_to_shared(self, addr: int) -> Tuple[bool, int]:
        """M/E -> S on the directory's order; returns ``(was_dirty, version)``."""
        line = self.array.lookup(addr, touch=False)
        if line is None:
            return False, 0
        was_dirty, version = line.dirty, line.version
        line.state = MesiState.SHARED
        return was_dirty, version

    # ------------------------------------------------------------------ #

    def _respond(self, req: Message, mtype: MessageType, version: int) -> None:
        resp = req.make_response(mtype, version=version)
        if self._hit_on_wheel:
            # Inlined Simulator.schedule (wheel tier).
            sim = self.sim
            sim._seq = seq = sim._seq + 1
            sim._wheel[(sim.now + self._hit_latency) & WHEEL_MASK].append(
                (seq, resp.reply_to.receive_response, (resp,)))
            sim._wheel_count += 1
        else:
            self.sim.schedule(
                self._hit_latency, resp.reply_to.receive_response, resp
            )
