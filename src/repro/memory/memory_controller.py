"""The host memory controller.

Per Section V-A the memory controller may reorder operations **but does
not violate data dependencies**: accesses to the same line stay in arrival
order, and nothing addressing a scope reorders with a PIM op to that
scope.  This makes PIM-op arrival at the MC the global ordering point --
the MC therefore sends the PIM ACK the moment a PIM op is enqueued
(Fig. 6a/6b).

Routing: messages addressing PIM scopes are handed to the PIM module
(which is the memory for those addresses and enforces per-scope arrival
order internally); everything else is serviced by the DRAM stage (one
service resource; bank-level parallelism folded into a service rate).
A message headed for the PIM module waits in the MC queue while the
module's corresponding queue is full -- this is where the PIM module's
back-pressure reaches the host (Section VII).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.memory.versioned import VersionedMemory
from repro.sim.component import Component
from repro.sim.config import MemoryConfig
from repro.sim.kernel import Simulator, WHEEL_MASK, WHEEL_SLOTS
from repro.sim.messages import Message, MessageType
from repro.sim.stats import StatGroup

_LOAD = MessageType.LOAD
_STORE = MessageType.STORE
_WRITEBACK = MessageType.WRITEBACK
_PIM_OP = MessageType.PIM_OP


class MemoryController(Component):
    """Reordering memory controller with dependency preservation."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        config: MemoryConfig,
        memory: VersionedMemory,
        resp_net: Component,
        pim_module=None,
    ) -> None:
        super().__init__(sim, name)
        self.config = config
        self.memory = memory
        self.resp_net = resp_net
        self.pim_module = pim_module
        self._queue: List[Message] = []
        # Insertion-ordered dedup of parked senders (O(1) membership).
        self._waiting_senders: dict = {}
        self._busy = False
        #: PIM ops per scope that passed this MC and have not finished
        #: executing (kept for statistics and external queries).
        self.scope_inflight: Dict[int, int] = {}
        self.stats = StatGroup(name)
        # Service counters are batched as plain ints and synced into the
        # StatGroup at snapshot time.
        self._served = 0
        self._pim_forwarded = 0
        self.stats.register_flush(self._flush_stats)
        self._queue_len = self.stats.mean("queue_length_at_arrival",
                                          extremes=False)
        # DRAM timing, predigested for the inlined wheel-tier schedules.
        self._dram_interval = config.dram_service_interval
        self._dram_latency = config.dram_latency
        self._interval_on_wheel = 0 < self._dram_interval < WHEEL_SLOTS
        self._latency_on_wheel = 0 < self._dram_latency < WHEEL_SLOTS
        # Burst batching (off at the default length of 1: the hot path
        # below stays bit-for-bit the one-access-per-interval stage).
        burst_len = config.dram_burst_len
        self._burst_len = burst_len
        self._burst_enabled = burst_len > 1
        #: Aligned-window mask: two accesses whose line addresses share
        #: ``addr & mask`` fuse into the same burst transaction.
        self._burst_mask = ~(64 * burst_len - 1)
        self._bursts = 0
        self._burst_msgs = 0
        if self._burst_enabled:
            # Opt-in stats: new snapshot keys re-baseline result digests,
            # so only burst-enabled configurations export them.
            bursts = self.stats.counter("bursts_issued")
            length = self.stats.mean("burst_length", extremes=False)

            def _flush_burst() -> None:
                bursts.value = self._bursts
                length.total = self._burst_msgs
                length.count = self._bursts

            self.stats.register_flush(_flush_burst)
        # Pre-bound callables for the per-request hot path.
        self._serve_bound = self._serve
        self._service_done_bound = self._service_done
        self._resp_offer = resp_net.offer
        #: Stall-attribution bucket (Tracer-owned dict) when tracing.
        self._stalls = None

    def _flush_stats(self) -> None:
        stats = self.stats
        stats.counter("requests_served").value = self._served
        stats.counter("pim_ops_forwarded").value = self._pim_forwarded

    # ------------------------------------------------------------------ #
    # producer side
    # ------------------------------------------------------------------ #

    def offer(self, msg: Message, sender: Optional[Component] = None) -> bool:
        queue = self._queue
        if len(queue) >= self.config.queue_capacity:
            if sender is not None:
                self._waiting_senders[sender] = None
            return False
        stat = self._queue_len
        stat.total += len(queue)
        stat.count += 1
        queue.append(msg)
        if msg.mtype is _PIM_OP:
            # Arrival at the MC is the ordering point: ACK now (Fig. 6a-b).
            self.scope_inflight[msg.scope] = self.scope_inflight.get(msg.scope, 0) + 1
            if msg.reply_to is not None:
                ack = msg.make_response(MessageType.PIM_ACK)
                self._resp_offer(ack, None)
        sim = self.sim
        sim._seq = seq = sim._seq + 1
        sim._ring.append((seq, self._serve_bound, ()))
        return True

    # ------------------------------------------------------------------ #
    # service loop
    # ------------------------------------------------------------------ #

    def _serve(self) -> None:
        queue = self._queue
        trace = self._trace
        while queue:
            index = self._pick()
            if index is None:
                return
            msg = queue[index]
            if msg.scope is not None and self.pim_module is not None:
                # PIM-memory traffic: hand over to the module (its queues
                # were checked by _pick, so this cannot fail).
                queue.pop(index)
                if trace is not None:
                    trace.record(self.sim.now, self.name, msg.mtype.name,
                                 msg.op_id)
                self.pim_module.offer(msg, self)
                if msg.mtype is _PIM_OP:
                    self._pim_forwarded += 1
                self._served += 1
                if self._waiting_senders:
                    self._wake_senders()
                continue
            if self._busy:
                return
            # DRAM service: one message (or one fused burst) per
            # service interval.
            queue.pop(index)
            self._served += 1
            if trace is not None:
                # Record before service: a terminal writeback is
                # released back to the pool inside _service_dram.
                trace.record(self.sim.now, self.name, msg.mtype.name,
                             msg.op_id)
            batch = self._collect_burst(msg) if self._burst_enabled else None
            if self._waiting_senders:
                self._wake_senders()
            self._busy = True
            if self._interval_on_wheel:
                # Inlined Simulator.schedule (wheel tier).
                sim = self.sim
                sim._seq = seq = sim._seq + 1
                sim._wheel[(sim.now + self._dram_interval) & WHEEL_MASK].append(
                    (seq, self._service_done_bound, ()))
                sim._wheel_count += 1
            else:
                self.sim.schedule(self._dram_interval, self._service_done_bound)
            self._service_dram(msg)
            if batch:
                for fused in batch:
                    if trace is not None:
                        trace.record(self.sim.now, self.name,
                                     fused.mtype.name, fused.op_id)
                    self._service_dram(fused)
            return

    def _collect_burst(self, first: Message) -> Optional[List[Message]]:
        """Pull queued accesses in ``first``'s burst window (arrival order).

        Contiguity rule: a DRAM access fuses with the burst when its
        line falls in the same aligned ``dram_burst_len``-line window.
        Taking window matches in queue order preserves the Section V-A
        dependency rules: same-line accesses keep their relative order
        (a pair is either fused in order or the younger one stays
        queued), and PIM-scope traffic never fuses.
        """
        queue = self._queue
        mask = self._burst_mask
        window = first.addr & mask
        room = self._burst_len - 1
        batch: Optional[List[Message]] = None
        i = 0
        while i < len(queue) and room:
            msg = queue[i]
            if msg.scope is None and msg.addr & mask == window:
                queue.pop(i)
                if batch is None:
                    batch = []
                batch.append(msg)
                room -= 1
            else:
                i += 1
        self._bursts += 1
        if batch:
            fused = len(batch)
            self._served += fused
            self._burst_msgs += 1 + fused
        else:
            self._burst_msgs += 1
        return batch

    def _service_dram(self, msg: Message) -> None:
        mtype = msg.mtype
        if mtype is _WRITEBACK:
            self.memory.write(msg.addr, msg.version)
            msg.release()  # terminal: writebacks get no response
            return
        if mtype is _LOAD:
            version = self.memory.read(msg.addr)
            resp = msg.make_response(MessageType.LOAD_RESP, version=version)
        elif mtype is _STORE:
            version = self.memory.bump(msg.addr)
            resp = msg.make_response(MessageType.STORE_ACK, version=version)
        elif mtype is MessageType.FLUSH:
            resp = msg.make_response(MessageType.FLUSH_ACK)
        else:  # pragma: no cover - defensive
            raise ValueError(f"MC cannot service {mtype}")
        if self._latency_on_wheel:
            # Inlined Simulator.schedule (wheel tier): the DRAM access
            # latency is the hottest heap delay the seed kernel had.
            sim = self.sim
            sim._seq = seq = sim._seq + 1
            sim._wheel[(sim.now + self._dram_latency) & WHEEL_MASK].append(
                (seq, self._resp_offer, (resp, None)))
            sim._wheel_count += 1
        else:
            self.sim.schedule(self._dram_latency, self._resp_offer,
                              resp, None)

    def _service_done(self) -> None:
        self._busy = False
        self._serve()

    def _pick(self) -> Optional[int]:
        """First serviceable request in arrival order (reorder window).

        Dependency rules (Section V-A): same-line DRAM accesses stay
        FIFO; PIM-scope messages stay FIFO per scope (they are handed to
        the PIM module, which preserves arrival order per scope) and are
        only picked when the module's corresponding queue has room.

        The dependency context (lines / scopes already seen) accumulates
        in one forward walk instead of re-scanning the queue prefix per
        candidate -- this loop runs for every message the MC serves.
        """
        module = self.pim_module
        busy = self._busy
        stalls = self._stalls
        seen_lines = None  # line addrs of earlier non-scope messages
        seen_scopes = None  # scopes of earlier scope-carrying messages
        for i, msg in enumerate(self._queue):
            scope = msg.scope
            if scope is not None and module is not None:
                if module.can_accept(msg):
                    if seen_scopes is None or scope not in seen_scopes:
                        return i
                elif stalls is not None:
                    # Held back because the module's queue is full: one
                    # pim_busy incident per passed-over pick attempt.
                    stalls["pim_busy"] = stalls.get("pim_busy", 0) + 1
            elif not busy and (seen_lines is None
                               or (msg.addr & ~63) not in seen_lines):
                return i
            # Passed over: record the ordering constraints it imposes on
            # everything younger (same-line FIFO for DRAM traffic,
            # same-scope FIFO for PIM-memory traffic).
            if scope is None:
                if seen_lines is None:
                    seen_lines = {msg.addr & ~63}
                else:
                    seen_lines.add(msg.addr & ~63)
            elif seen_scopes is None:
                seen_scopes = {scope}
            else:
                seen_scopes.add(scope)
        return None

    # ------------------------------------------------------------------ #
    # PIM module callbacks
    # ------------------------------------------------------------------ #

    def pim_op_completed(self, scope: int) -> None:
        """The PIM module finished executing an op of ``scope``."""
        count = self.scope_inflight.get(scope, 0) - 1
        if count <= 0:
            self.scope_inflight.pop(scope, None)
        else:
            self.scope_inflight[scope] = count
        self.sim.call_at_now(self._serve_bound)

    def unblock(self) -> None:
        """The PIM module freed queue space."""
        self.sim.call_at_now(self._serve_bound)

    def _wake_senders(self) -> None:
        waiters = self._waiting_senders
        self._waiting_senders = {}
        for waiter in waiters:
            waiter.unblock()

    @property
    def occupancy(self) -> int:
        return len(self._queue)
