"""The differential invariant oracle over generated litmus programs.

Three model-theoretic invariants, checked against the abstract machines
of :mod:`repro.core.litmus`:

1. **Strength-lattice monotonicity** (:func:`check_lattice`) -- on the
   bare rendering (identical program text for every model), a stronger
   model's reachable outcome set must be a subset of every weaker
   model's: ``atomic <= store <= scope <= scope-relaxed`` under
   :class:`~repro.core.litmus.ModelExecutor`.

2. **Coherence of the atomic-flush mechanism** (:func:`check_coherence`)
   -- for every outcome the in-order machine reaches under a
   correctness-guaranteeing model, the observed happens-before relation
   (program order + reads-from + from-read edges, built by
   :func:`happens_before` on :class:`~repro.core.ordering.HappensBefore`)
   is acyclic, and every read value is explained by the value encoding
   (init, a unique store, or its post-PIM bump).  The classic
   stale-read-after-PIM observation is exactly a
   ``PIM -> r(new) -> r(old) -> PIM`` cycle, so this subsumes the Fig. 1
   predicate and generalizes it across scopes.  Run against the Naive or
   SW-Flush baseline the same check *finds* cycles -- the known-violating
   control the fuzz harness uses to prove the oracle has teeth.

3. **Simulator/checker agreement** -- the timing simulator's stale-read
   counter is the projection of outcome membership the full stack
   exposes; :mod:`repro.fuzz.harness` runs the synchronized timing
   workload and requires zero stale reads under every
   correctness-guaranteeing model.

A deliberately broken mechanism is available behind ``weaken=
"no-atomic-flush"`` (the proposed models lose their atomic scope flush),
which makes invariant 2 fail and exercises the shrinker end to end.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.litmus import LitmusExecutor, ModelExecutor
from repro.core.memops import OpKind
from repro.core.models import ConsistencyModel, properties_of
from repro.core.ordering import HappensBefore
from repro.fuzz.program import VERSION_BUMP, FuzzProgram, Rendering

__all__ = [
    "LATTICE",
    "WEAKEN_CHOICES",
    "Violation",
    "check_coherence",
    "check_lattice",
    "check_program",
    "fingerprints",
    "happens_before",
    "inorder_executor",
    "outcomes_digest",
]

#: The proposed models, strongest first (Table I's strength lattice).
LATTICE = (
    ConsistencyModel.ATOMIC,
    ConsistencyModel.STORE,
    ConsistencyModel.SCOPE,
    ConsistencyModel.SCOPE_RELAXED,
)

#: Supported deliberate weakenings (test flag; see module docstring).
WEAKEN_CHOICES = ("no-atomic-flush",)

Outcome = Tuple[Tuple[int, int, int], ...]


@dataclass(frozen=True)
class Violation:
    """One invariant violation, self-describing for repro artifacts."""

    invariant: str
    model: str
    detail: str
    outcome: Optional[Outcome] = None
    cycle: Tuple[str, ...] = field(default=())

    def to_dict(self) -> Dict[str, object]:
        return {
            "invariant": self.invariant,
            "model": self.model,
            "detail": self.detail,
            "outcome": ([list(read) for read in self.outcome]
                        if self.outcome is not None else None),
            "cycle": list(self.cycle),
        }


# ---------------------------------------------------------------------- #
# executors
# ---------------------------------------------------------------------- #


def inorder_executor(program: FuzzProgram, model: ConsistencyModel,
                     weaken: Optional[str] = None
                     ) -> Tuple[LitmusExecutor, Rendering]:
    """The in-order abstract machine under ``model``'s mechanism."""
    rendering = program.rendering(model)
    props = properties_of(model)
    flush_atomic = props.flushes_at_llc and weaken != "no-atomic-flush"
    executor = LitmusExecutor(
        rendering.program,
        flush_atomic=flush_atomic,
        prefetch_budget=program.prefetch_budget,
        uncacheable=model is ConsistencyModel.UNCACHEABLE,
    )
    return executor, rendering


# ---------------------------------------------------------------------- #
# invariant 2: happens-before coherence
# ---------------------------------------------------------------------- #


def _node(rendering: Rendering, tid: int, index: int) -> str:
    op = rendering.threads[tid][index]
    prefix = f"T{tid}.{index}"
    if op.address is not None:
        scope, slot = rendering.addr_info[op.address]
        where = f"s{scope}.{slot}"
        if op.kind is OpKind.STORE:
            return f"{prefix}:W({where})"
        if op.kind is OpKind.LOAD:
            return f"{prefix}:r({where})"
        if op.kind is OpKind.FLUSH:
            return f"{prefix}:flush({where})"
    if op.kind is OpKind.PIM_OP:
        return f"{prefix}:PIM(s{op.scope})"
    return f"{prefix}:{op.kind.name.lower()}"


def happens_before(rendering: Rendering, outcome: Outcome
                   ) -> Tuple[HappensBefore, List[Tuple[int, int, int]]]:
    """The observed happens-before relation of one outcome.

    Edges: per-thread program order; ``rf`` from a store (or a scope's
    PIM op) to a read observing its value; ``fr`` from a read observing
    a value to the operation that overwrote it (the store over init, the
    PIM op over everything pre-PIM).  Returns the graph plus any *alien*
    reads -- values the encoding cannot explain, which are value-
    conservation violations in their own right.
    """
    hb = HappensBefore()
    for tid, thread in enumerate(rendering.threads):
        hb.add_chain(
            (_node(rendering, tid, op.index) for op in thread), "po")
    aliens: List[Tuple[int, int, int]] = []
    for tid, index, value in outcome:
        read = _node(rendering, tid, index)
        op = rendering.threads[tid][index]
        scope, _slot = rendering.addr_info[op.address]
        stored = rendering.store_value.get(op.address)
        store_at = rendering.store_site.get(op.address)
        pim_at = rendering.pim_site.get(scope)
        pim = (_node(rendering, *pim_at) if pim_at is not None else None)
        store = (_node(rendering, *store_at) if store_at is not None
                 else None)
        if value >= VERSION_BUMP:
            if pim is None or value - VERSION_BUMP not in (0, stored):
                aliens.append((tid, index, value))
                continue
            hb.add(pim, read, "rf-pim")
        elif value == 0:
            if store is not None:
                hb.add(read, store, "fr")
            if pim is not None:
                hb.add(read, pim, "fr-pim")
        elif value == stored:
            hb.add(store, read, "rf")
            if pim is not None:
                hb.add(read, pim, "fr-pim")
        else:
            aliens.append((tid, index, value))
    return hb, aliens


def check_coherence(program: FuzzProgram, model: ConsistencyModel,
                    weaken: Optional[str] = None) -> List[Violation]:
    """Invariant 2 on one model's in-order mechanism.

    Empty for every correctness-guaranteeing model (unless ``weaken``
    breaks the mechanism); non-empty results against Naive/SW-Flush are
    the *expected* control signal, not failures.
    """
    executor, rendering = inorder_executor(program, model, weaken)
    violations: List[Violation] = []
    for outcome in sorted(executor.outcomes()):
        hb, aliens = happens_before(rendering, outcome)
        if aliens:
            violations.append(Violation(
                invariant="value-conservation",
                model=model.value,
                detail=f"unexplained read values {sorted(aliens)}",
                outcome=outcome,
            ))
            continue
        cycle = hb.find_cycle()
        if cycle is not None:
            violations.append(Violation(
                invariant="hb-cycle",
                model=model.value,
                detail="observed happens-before relation is cyclic "
                       "(stale read after PIM)",
                outcome=outcome,
                cycle=tuple(cycle),
            ))
    return violations


# ---------------------------------------------------------------------- #
# invariant 1: strength-lattice monotonicity
# ---------------------------------------------------------------------- #


def check_lattice(program: FuzzProgram) -> List[Violation]:
    """Invariant 1: nested outcome sets along the strength lattice."""
    rendering = program.rendering(None)
    outcome_sets = {
        model: ModelExecutor(
            rendering.program, model,
            prefetch_budget=program.prefetch_budget).outcomes()
        for model in LATTICE
    }
    violations: List[Violation] = []
    for stronger, weaker in zip(LATTICE, LATTICE[1:]):
        extra = outcome_sets[stronger] - outcome_sets[weaker]
        if extra:
            violations.append(Violation(
                invariant="lattice",
                model=f"{stronger.value}<={weaker.value}",
                detail=f"{len(extra)} outcome(s) reachable under "
                       f"{stronger.value} but not under {weaker.value}",
                outcome=min(extra),
            ))
    return violations


def check_program(program: FuzzProgram,
                  weaken: Optional[str] = None) -> List[Violation]:
    """Every *must-hold* abstract invariant on one program.

    Lattice monotonicity, plus happens-before coherence under each
    correctness-guaranteeing model's mechanism (the four proposed models
    share one in-order mechanism; ``atomic`` runs it once for them, and
    ``scope-relaxed`` adds the scope-fence rendering; ``uncacheable``
    runs the bypass mechanism).  Baseline controls are *not* included --
    their cycles are expected and reported separately by the harness.
    """
    violations = list(check_lattice(program))
    for model in (ConsistencyModel.ATOMIC,
                  ConsistencyModel.SCOPE_RELAXED,
                  ConsistencyModel.UNCACHEABLE):
        violations.extend(check_coherence(program, model, weaken))
    return violations


# ---------------------------------------------------------------------- #
# outcome fingerprints (corpus replay)
# ---------------------------------------------------------------------- #


def outcomes_digest(outcomes: Iterable[Outcome]) -> str:
    """A stable digest of a reachable-outcome set."""
    payload = json.dumps(
        sorted([list(read) for read in outcome] for outcome in outcomes))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


def fingerprints(program: FuzzProgram) -> Dict[str, str]:
    """Outcome-set digests keyed by executor leg.

    ``inorder:<model>`` covers all six mechanisms on the in-order
    machine; ``reorder:<model>`` covers the four proposed models under
    Table-I reordering on the bare rendering.  Corpus replay recomputes
    these and diffs -- any semantic drift in the executors, the
    renderings or ``may_reorder`` shows up as a mismatch.
    """
    out: Dict[str, str] = {}
    for model in ConsistencyModel:
        executor, _rendering = inorder_executor(program, model)
        out[f"inorder:{model.value}"] = outcomes_digest(executor.outcomes())
    bare = program.rendering(None)
    for model in LATTICE:
        executor = ModelExecutor(
            bare.program, model, prefetch_budget=program.prefetch_budget)
        out[f"reorder:{model.value}"] = outcomes_digest(executor.outcomes())
    return out
