"""Delta-debugging shrinker for failing fuzz programs.

Given a program and a predicate that re-checks the violated invariant,
:func:`shrink` greedily applies the smallest-step reductions the issue
demands -- drop a thread, drop an op, shrink a scope's address slots,
cut the prefetch budget -- keeping any reduction under which the failure
still reproduces, until no reduction applies.  Reductions only ever
*delete*, so every candidate preserves the structural rules
:meth:`~repro.fuzz.program.FuzzProgram.validate` enforces (a scope that
loses its PIM op merely loses its constraints); candidates are tried in
a fixed order, so shrinking is as deterministic as the predicate.

The result is the minimal repro persisted into the self-describing JSON
artifact (:mod:`repro.fuzz.corpus`).
"""

from __future__ import annotations

from typing import Callable, Iterator, List, Tuple

from repro.fuzz.program import FuzzOp, FuzzProgram

__all__ = ["shrink"]


def _drop_scope(program: FuzzProgram, scope: int) -> FuzzProgram:
    """Remove one unreferenced scope, renumbering the ones above it."""

    def remap(op: FuzzOp) -> FuzzOp:
        if op.kind == "fence" or op.scope < scope:
            return op
        return FuzzOp(op.kind, op.scope - 1, op.index)

    return FuzzProgram(
        threads=tuple(tuple(remap(op) for op in ops)
                      for ops in program.threads),
        slots=program.slots[:scope] + program.slots[scope + 1:],
        prefetch_budget=program.prefetch_budget,
        seed=program.seed,
    )


def _candidates(program: FuzzProgram) -> Iterator[FuzzProgram]:
    """Every one-step reduction, most aggressive first."""
    # Drop a whole thread.
    if len(program.threads) > 1:
        for tid in range(len(program.threads)):
            yield FuzzProgram(
                threads=program.threads[:tid] + program.threads[tid + 1:],
                slots=program.slots,
                prefetch_budget=program.prefetch_budget,
                seed=program.seed,
            )
    # Drop a whole scope nothing references any more.
    if len(program.slots) > 1:
        referenced = {op.scope for ops in program.threads for op in ops
                      if op.kind != "fence"}
        for scope in range(len(program.slots)):
            if scope not in referenced:
                yield _drop_scope(program, scope)
    # Drop one op.
    for tid, ops in enumerate(program.threads):
        for pos in range(len(ops)):
            yield FuzzProgram(
                threads=(program.threads[:tid]
                         + (ops[:pos] + ops[pos + 1:],)
                         + program.threads[tid + 1:]),
                slots=program.slots,
                prefetch_budget=program.prefetch_budget,
                seed=program.seed,
            )
    # Trim a scope's unused top slots.
    used = {}
    for ops in program.threads:
        for op in ops:
            if op.kind in ("load", "store", "flush"):
                used[op.scope] = max(used.get(op.scope, 0), op.index + 1)
    for scope, count in enumerate(program.slots):
        need = used.get(scope, 1)
        if count > need:
            yield FuzzProgram(
                threads=program.threads,
                slots=(program.slots[:scope] + (need,)
                       + program.slots[scope + 1:]),
                prefetch_budget=program.prefetch_budget,
                seed=program.seed,
            )
    # Cut the prefetch budget.
    if program.prefetch_budget > 0:
        yield FuzzProgram(
            threads=program.threads,
            slots=program.slots,
            prefetch_budget=program.prefetch_budget - 1,
            seed=program.seed,
        )


def shrink(program: FuzzProgram,
           still_fails: Callable[[FuzzProgram], bool],
           max_checks: int = 2000) -> Tuple[FuzzProgram, int]:
    """Minimize ``program`` while ``still_fails`` holds.

    Returns the fixed-point program and how many candidate checks ran.
    ``max_checks`` bounds the work on pathological predicates; the
    shrink restarts from the first candidate after every acceptance, so
    the result is a local minimum under the one-step reductions.
    """
    checks = 0
    current = program
    improved = True
    while improved and checks < max_checks:
        improved = False
        for candidate in _candidates(current):
            if checks >= max_checks:
                break
            try:
                candidate.validate()
            except ValueError:
                continue
            checks += 1
            if still_fails(candidate):
                current = candidate
                improved = True
                break
    return current, checks
