"""Differential litmus fuzzing for the consistency-model stack.

A seeded generator (:mod:`repro.fuzz.generate`) emits randomized litmus
scenarios -- :class:`~repro.fuzz.program.FuzzProgram`: per-thread
streams of stores, loads, flushes and PIM ops over shaped scopes -- in
two synchronized forms: abstract renderings executed by the
:mod:`repro.core.litmus` model checkers, and the ``litmus-fuzz`` timing
workload compiled onto the full simulator.

The oracle (:mod:`repro.fuzz.oracle`) holds three invariant families:

1. **Lattice monotonicity** -- a stronger proposed model's outcome set
   is a subset of every weaker one's (atomic <= store <= scope <=
   scope-relaxed), under both in-order and model-reordering executors.
2. **Coherence** -- under every correctness-guaranteeing model, no
   outcome reads a stale pre-PIM value (value conservation) and the
   per-outcome happens-before graph (:mod:`repro.core.ordering`) stays
   acyclic.  The software-flush and naive baselines are the known-
   violating controls that prove the oracle has teeth.
3. **Simulator/checker agreement** -- the timing workload reports zero
   stale PIM-result reads under exactly the models the checker calls
   correct.

Violations shrink to minimal repros (:mod:`repro.fuzz.shrink`) persisted
as self-describing JSON; surviving programs enter a store-backed corpus
(:mod:`repro.fuzz.corpus`) replayed as a regression suite.  The whole
loop is :func:`repro.fuzz.harness.fuzz_run`, surfaced as ``repro-bench
fuzz run|replay|corpus`` and the ``litmus-fuzz`` campaign.
"""

from repro.fuzz.corpus import FuzzCorpus, corpus_entry, replay_entry
from repro.fuzz.generate import GeneratorKnobs, generate_batch, generate_program
from repro.fuzz.harness import fuzz_run, replay_corpus
from repro.fuzz.oracle import (Violation, check_coherence, check_lattice,
                               check_program, fingerprints)
from repro.fuzz.program import FuzzOp, FuzzProgram
from repro.fuzz.shrink import shrink

__all__ = [
    "FuzzCorpus",
    "FuzzOp",
    "FuzzProgram",
    "GeneratorKnobs",
    "Violation",
    "check_coherence",
    "check_lattice",
    "check_program",
    "corpus_entry",
    "fingerprints",
    "fuzz_run",
    "generate_batch",
    "generate_program",
    "replay_corpus",
    "replay_entry",
    "shrink",
]
