"""The fuzz campaign driver: generate, check, shrink, accumulate.

:func:`fuzz_run` is the engine behind ``repro-bench fuzz run`` and the
CI fuzz gates: a fixed-seed batch of generated programs goes through the
abstract invariant oracle (:mod:`repro.fuzz.oracle`), the synchronized
timing workload (``litmus-fuzz``) across the six models, the
delta-debugging shrinker on any violation, and -- for survivors -- the
store-backed corpus (:mod:`repro.fuzz.corpus`).

Determinism is load-bearing: the run report contains no timestamps, no
host state and no store-dependent counts, every collection is sorted,
and the timing experiments are deterministic simulations -- so the same
seed produces byte-identical reports on the Serial and ProcessPool
backends, on any machine.  CI asserts exactly that.

:func:`replay_corpus` is the regression direction: recompute every
corpus entry's abstract outcome fingerprints and timing stale counts
and diff against what was recorded when the entry was admitted.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from typing import Callable, Dict, List, Optional, Tuple

from repro.api.backends import backend_for
from repro.api.experiment import Experiment
from repro.api.runner import Runner
from repro.core.models import ConsistencyModel
from repro.fuzz import oracle
from repro.fuzz.corpus import (FLIGHT_SCHEMA, REPRO_SCHEMA, FuzzCorpus,
                               corpus_entry, replay_entry)
from repro.fuzz.generate import GeneratorKnobs, generate_batch
from repro.fuzz.program import FuzzProgram
from repro.fuzz.shrink import shrink

__all__ = ["REPORT_SCHEMA", "SIX_MODELS", "flight_dump", "fuzz_run",
           "replay_corpus", "timing_experiment"]

#: Schema tag of a fuzz run report.
REPORT_SCHEMA = "repro-fuzz-report/1"

#: Event-ring capacity for flight-recorder captures.
FLIGHT_RING = 4096

#: The evaluation's six models, figure order (timing leg sweep).
SIX_MODELS = ("naive", "sw-flush", "atomic", "store", "scope",
              "scope-relaxed")

#: Known-violating in-order controls (cycles expected, reported as
#: liveness statistics rather than failures).
CONTROL_MODELS = (ConsistencyModel.NAIVE, ConsistencyModel.SW_FLUSH)

#: Event budget per timing point (smoke-sized simulations).
MAX_EVENTS = 50_000_000


def timing_experiment(program: FuzzProgram, model: str,
                      rounds: int = 2) -> Experiment:
    """The timing-leg experiment spec for one program x model point."""
    return Experiment.from_dict({
        "workload": "litmus-fuzz",
        "params": {"spec": program.to_dict(), "rounds": rounds},
        "config": {"preset": "scaled", "model": model,
                   "num_scopes": max(2, len(program.slots))},
        "variant": "fuzz",
        "max_events": MAX_EVENTS,
    })


def flight_dump(program: FuzzProgram, model: str, rounds: int = 2,
                ring: int = FLIGHT_RING,
                seed: Optional[int] = None,
                invariant: str = "timing-stale") -> Dict[str, object]:
    """Re-run one program x model point with the flight recorder armed.

    The trace rides as an execution overlay
    (:class:`~repro.sim.config.TraceConfig`), so the experiment spec --
    and any cached result keyed on it -- is exactly the untraced one.
    The returned dump is self-describing and deterministic: replaying
    it (calling this again on the embedded program) reproduces the
    byte-identical snapshot, which ``tests/fuzz`` asserts.
    """
    from repro.api.backends import execute_experiment
    from repro.sim.config import TraceConfig

    trace = TraceConfig(enabled=True, ring_size=ring, flight=True)
    result = execute_experiment(
        timing_experiment(program, model, rounds), trace=trace)
    obs = result.obs or {}
    return {
        "schema": FLIGHT_SCHEMA,
        "digest": program.digest(),
        "invariant": invariant,
        "model": model,
        "seed": seed,
        "rounds": rounds,
        "ring": ring,
        "program": program.to_dict(),
        "stale_reads": result.stale_reads,
        "flight_triggers": obs.get("flight_triggers", 0),
        "flight": obs.get("flight"),
    }


def _shrink_predicate(invariant: str, model: str, weaken: Optional[str],
                      rounds: int, runner: Runner
                      ) -> Callable[[FuzzProgram], bool]:
    """A re-check of one violated invariant, for the shrinker."""
    if invariant == "lattice":
        return lambda q: bool(oracle.check_lattice(q))
    if invariant == "timing-stale":
        def timing_fails(q: FuzzProgram) -> bool:
            result = runner.run_all(
                [timing_experiment(q, model, rounds)])[0]
            return result.stale_reads > 0
        return timing_fails
    cm = ConsistencyModel(model)
    return lambda q: bool(oracle.check_coherence(q, cm, weaken))


def _recheck(shrunk: FuzzProgram, violation: oracle.Violation,
             weaken: Optional[str]) -> oracle.Violation:
    """The same violation kind re-derived on the shrunk program.

    The shrinker only guarantees the *predicate* still fails; the
    recorded outcome and cycle must describe the shrunk program, not the
    original, or the artifact isn't self-describing.  Timing-stale has
    no abstract witness to re-derive, so it passes through.
    """
    if violation.invariant == "lattice":
        fresh = oracle.check_lattice(shrunk)
    elif violation.invariant in ("value-conservation", "hb-cycle"):
        fresh = oracle.check_coherence(
            shrunk, ConsistencyModel(violation.model), weaken)
    else:
        return violation
    for candidate in fresh:
        if candidate.invariant == violation.invariant:
            return candidate
    return fresh[0] if fresh else violation


def _repro(program: FuzzProgram, shrunk: FuzzProgram, checks: int,
           violation: oracle.Violation, seed: int,
           weaken: Optional[str]) -> Dict[str, object]:
    """The self-describing minimal-repro artifact for one violation."""
    violation = _recheck(shrunk, violation, weaken)
    return {
        "schema": REPRO_SCHEMA,
        "digest": shrunk.digest(),
        "original_digest": program.digest(),
        "seed": seed,
        "weaken": weaken,
        "invariant": violation.invariant,
        "model": violation.model,
        "violation": violation.to_dict(),
        "program": shrunk.to_dict(),
        "op_count": shrunk.op_count,
        "shrink_checks": checks,
    }


def fuzz_run(seed: int, programs: int = 200,
             knobs: Optional[GeneratorKnobs] = None,
             max_ops: Optional[int] = None,
             jobs: int = 1,
             store=None,
             corpus_root: Optional[str] = None,
             timing: bool = True,
             rounds: int = 2,
             weaken: Optional[str] = None,
             flight: bool = False) -> Dict[str, object]:
    """One differential fuzz campaign; returns the deterministic report.

    Args:
        seed: root generator seed.
        programs: batch size (distinct scenarios, best effort).
        knobs: generator bounds (default :class:`GeneratorKnobs`).
        max_ops: tighter per-program op budget, if given.
        jobs: worker processes for the timing leg (>1: ProcessPool).
        store: optional :class:`~repro.api.store.ResultStore`; timing
            points hydrate from / persist into it.
        corpus_root: directory whose ``fuzz/`` subtree receives corpus
            entries and minimal repros (typically the store root).
        timing: run the simulator/checker-agreement leg.
        rounds: timing-workload repetitions per scenario.
        weaken: deliberate mechanism break (``"no-atomic-flush"``) --
            the oracle self-test; violations are expected and shrunk.
        flight: flight-recorder mode (``fuzz run --trace``): every
            shrunk ``timing-stale`` violation is re-run with the event
            ring armed and the snapshot leading up to the firing
            invariant lands under ``<corpus_root>/fuzz/flight/``.  The
            report itself is unchanged unless a dump was written.

    The report's ``violations`` list is empty exactly when every
    invariant held; the CLI turns non-empty into a nonzero exit.
    """
    if weaken is not None and weaken not in oracle.WEAKEN_CHOICES:
        raise ValueError(
            f"unknown weaken mode {weaken!r}; "
            f"choices: {', '.join(oracle.WEAKEN_CHOICES)}")
    knobs = (knobs or GeneratorKnobs()).bounded(max_ops)
    batch = generate_batch(seed, programs, knobs)
    fuzz_store = FuzzCorpus(corpus_root) if corpus_root else None
    shrink_runner = Runner(backend=backend_for(1), store=store)

    repro_docs: List[Dict[str, object]] = []
    flight_dumps: List[str] = []
    controls = {model.value: 0 for model in CONTROL_MODELS}
    clean: List[FuzzProgram] = []

    def record(program: FuzzProgram,
               violations: List[oracle.Violation],
               rounds_for_shrink: int) -> None:
        seen: set = set()
        for violation in violations:
            key = (violation.invariant, violation.model)
            if key in seen:
                continue  # one repro per (invariant, model) per program
            seen.add(key)
            predicate = _shrink_predicate(
                violation.invariant, violation.model, weaken,
                rounds_for_shrink, shrink_runner)
            shrunk, checks = shrink(program, predicate)
            repro_docs.append(_repro(
                program, shrunk, checks, violation, seed, weaken))
            if (flight and fuzz_store is not None
                    and violation.invariant == "timing-stale"):
                # The invariant fired on the timing simulator: capture
                # the moments leading up to it on the *shrunk* program,
                # next to its minimal repro.
                dump = flight_dump(shrunk, violation.model,
                                   rounds_for_shrink, seed=seed)
                fuzz_store.write_flight(dump)
                flight_dumps.append(
                    f"{dump['digest']}-{dump['model']}")

    for program in batch:
        violations = oracle.check_program(program, weaken)
        for model in CONTROL_MODELS:
            if oracle.check_coherence(program, model):
                controls[model.value] += 1
        if violations:
            record(program, violations, rounds)
        else:
            clean.append(program)

    # Timing leg: every clean program x the six models, one batch.
    timing_totals: Optional[Dict[str, int]] = None
    per_program_timing: Dict[str, Dict[str, int]] = {}
    if timing and clean:
        experiments = [
            timing_experiment(program, model, rounds)
            for program in clean for model in SIX_MODELS
        ]
        runner = Runner(backend=backend_for(jobs), store=store)
        results = runner.run_all(experiments)
        timing_totals = {model: 0 for model in SIX_MODELS}
        still_clean: List[FuzzProgram] = []
        cursor = 0
        for program in clean:
            stale_by_model: Dict[str, int] = {}
            timing_violations: List[oracle.Violation] = []
            for model in SIX_MODELS:
                stale = results[cursor].stale_reads
                cursor += 1
                stale_by_model[model] = stale
                timing_totals[model] += stale
                if stale and ConsistencyModel(model) not in CONTROL_MODELS:
                    timing_violations.append(oracle.Violation(
                        invariant="timing-stale",
                        model=model,
                        detail=f"{stale} stale PIM-result reads on the "
                               f"timing simulator under a correctness-"
                               f"guaranteeing model",
                    ))
            if timing_violations:
                record(program, timing_violations, rounds)
            else:
                per_program_timing[program.digest()] = stale_by_model
                still_clean.append(program)
        clean = still_clean

    corpus_added = 0
    if fuzz_store is not None:
        # A weakened run's survivors passed a deliberately broken
        # mechanism check; only unweakened survivors may enter the
        # regression corpus.  Repros always persist.
        for program in clean if weaken is None else ():
            fuzz_store.add(corpus_entry(
                program,
                timing=per_program_timing.get(program.digest()),
                seed=seed))
            corpus_added += 1
        for doc in repro_docs:
            fuzz_store.write_repro(doc)

    repro_docs.sort(key=lambda d: (d["original_digest"], d["invariant"],
                                   d["model"]))
    report: Dict[str, object] = {
        "schema": REPORT_SCHEMA,
        "seed": seed,
        "weaken": weaken,
        "knobs": asdict(knobs),
        "programs": len(batch),
        "distinct_programs": len({p.digest() for p in batch}),
        "program_digests": sorted(p.digest() for p in batch),
        "ops_total": sum(p.op_count for p in batch),
        "controls_cyclic": controls,
        "timing": ({"rounds": rounds, "models": list(SIX_MODELS),
                    "stale_reads": timing_totals}
                   if timing else None),
        "clean_programs": len(clean),
        "corpus_added": corpus_added,
        "violations": repro_docs,
    }
    if flight_dumps:
        report["flight_dumps"] = sorted(flight_dumps)
    report["digest"] = _report_digest(report)
    return report


def _report_digest(report: Dict[str, object]) -> str:
    import hashlib

    payload = {k: v for k, v in report.items() if k != "digest"}
    text = json.dumps(payload, sort_keys=True)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:16]


def replay_corpus(corpus_root: str, jobs: int = 1, store=None,
                  timing: bool = True) -> Dict[str, object]:
    """Re-check every corpus entry; returns the replay report.

    Abstract outcome fingerprints are recomputed and diffed; entries
    recorded with timing counts are re-simulated (their ``rounds`` is
    pinned by the recorded counts' provenance: the default harness
    rounds) and diffed too.  Any mismatch means the semantics of an
    executor, a rendering or the timing stack moved -- which is either a
    regression or an intentional change that should re-admit the corpus
    with ``fuzz run``.
    """
    fuzz_store = FuzzCorpus(corpus_root)
    entries = list(fuzz_store.entries())
    mismatches: Dict[str, List[str]] = {}
    replayable: List[Tuple[Dict[str, object], FuzzProgram]] = []
    for entry in entries:
        digest = str(entry.get("digest", "?"))
        problems = replay_entry(entry)
        if problems:
            mismatches[digest] = problems
            continue
        if timing and entry.get("timing_stale_reads") is not None:
            replayable.append((entry, FuzzProgram.from_dict(entry["program"])))
    if replayable:
        runner = Runner(backend=backend_for(jobs), store=store)
        experiments = [
            timing_experiment(program, model)
            for _entry, program in replayable for model in SIX_MODELS
        ]
        results = runner.run_all(experiments)
        cursor = 0
        for entry, _program in replayable:
            recorded = entry["timing_stale_reads"]
            for model in SIX_MODELS:
                stale = results[cursor].stale_reads
                cursor += 1
                if recorded.get(model) != stale:
                    mismatches.setdefault(
                        str(entry["digest"]), []).append(
                        f"timing:{model}: recorded "
                        f"{recorded.get(model)} stale reads, now {stale}")
    return {
        "schema": "repro-fuzz-replay/1",
        "entries": len(entries),
        "mismatches": {k: mismatches[k] for k in sorted(mismatches)},
    }
