"""Fuzz program descriptions: one litmus scenario, two synchronized forms.

A :class:`FuzzProgram` is a pure-data description of a randomized litmus
scenario -- per-thread op streams over scoped PIM addresses -- that
renders into *both* executable forms the repo has:

* an abstract :class:`~repro.core.litmus.LitmusProgram` for the
  model checkers (:class:`~repro.core.litmus.LitmusExecutor` /
  :class:`~repro.core.litmus.ModelExecutor`), via :meth:`rendering`;
* a timing workload for the full simulator, via
  :class:`repro.workloads.fuzz.FuzzLitmusWorkload` (which carries
  ``FuzzProgram.to_dict()`` in its experiment params).

Value encoding
--------------

The oracle needs to classify every observed read value without tracking
interleavings.  Three structural rules make that possible, enforced by
:meth:`validate` and preserved by the shrinker (which only deletes):

1. at most one PIM op per scope in the whole program;
2. every store to a PIM scope's addresses sits in the PIM-issuing
   thread, program-before the PIM op;
3. at most one store per address, with distinct values ``1..n`` where
   ``n <`` :data:`VERSION_BUMP`.

The abstract PIM function is ``v -> v + VERSION_BUMP``, so any observed
value ``>= VERSION_BUMP`` is post-PIM and any smaller value pre-PIM --
the generation bit the happens-before oracle (:mod:`repro.fuzz.oracle`)
builds its reads-from / from-read edges on.

Ops serialize as compact tokens (``store@0.1``, ``pim@0``, ``fence``) so
a program description is small enough to embed in experiment params and
corpus entries.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Dict, List, Mapping, NamedTuple, Optional, Sequence, Tuple

from repro.core.litmus import LitmusProgram
from repro.core.memops import MemOp, OpKind
from repro.core.models import ConsistencyModel

#: Schema tag of a serialized program description.
PROGRAM_SCHEMA = "repro-fuzz-program/1"

#: The abstract PIM function adds this to every scope address; store
#: values stay below it, so ``value >= VERSION_BUMP`` identifies a
#: post-PIM read.
VERSION_BUMP = 1000

_KINDS = ("load", "store", "flush", "pim", "fence")
_ADDRESSED = ("load", "store", "flush")


def fuzz_address(scope: int, index: int) -> int:
    """The abstract-machine address of a scope's ``index``-th slot."""
    return 0x1000 * (scope + 1) + 0x40 * index


class FuzzOp(NamedTuple):
    """One operation of a fuzz program (pure data)."""

    kind: str
    scope: int = -1
    index: int = -1

    def token(self) -> str:
        if self.kind == "fence":
            return "fence"
        if self.kind == "pim":
            return f"pim@{self.scope}"
        return f"{self.kind}@{self.scope}.{self.index}"

    @classmethod
    def from_token(cls, token: str) -> "FuzzOp":
        if token == "fence":
            return cls("fence")
        kind, sep, where = token.partition("@")
        if not sep or kind not in _KINDS:
            raise ValueError(f"bad fuzz op token {token!r}")
        if kind == "pim":
            return cls("pim", scope=int(where))
        scope_text, sep, index_text = where.partition(".")
        if not sep:
            raise ValueError(f"bad fuzz op token {token!r}")
        return cls(kind, scope=int(scope_text), index=int(index_text))


class Rendering(NamedTuple):
    """One abstract rendering of a fuzz program, plus oracle metadata."""

    program: LitmusProgram
    #: Rendered per-thread MemOp streams (``program.threads``).
    threads: Tuple[Tuple[MemOp, ...], ...]
    #: address -> (scope, slot index).
    addr_info: Dict[int, Tuple[int, int]]
    #: address -> the unique stored value (absent if never stored).
    store_value: Dict[int, int]
    #: address -> (thread, rendered op index) of its store.
    store_site: Dict[int, Tuple[int, int]]
    #: scope -> (thread, rendered op index) of its PIM op.
    pim_site: Dict[int, Tuple[int, int]]


@dataclass(frozen=True)
class FuzzProgram:
    """A randomized litmus scenario as pure, JSON-able data.

    Attributes:
        threads: per-thread :class:`FuzzOp` streams.
        slots: addresses per scope; position is the scope id.
        prefetch_budget: spontaneous cache fills the abstract machine's
            nondeterministic prefetcher may perform.
        seed: the generator seed that produced this program (provenance
            only; not part of the semantics).
    """

    threads: Tuple[Tuple[FuzzOp, ...], ...]
    slots: Tuple[int, ...]
    prefetch_budget: int = 1
    seed: int = 0

    # -- structural invariants ------------------------------------------- #

    def validate(self) -> None:
        """Raise ``ValueError`` unless the structural rules hold."""
        if not self.threads:
            raise ValueError("fuzz program has no threads")
        if not self.slots or any(n < 1 for n in self.slots):
            raise ValueError("every scope needs at least one address slot")
        pim_seen: Dict[int, Tuple[int, int]] = {}
        stores_seen: Dict[Tuple[int, int], Tuple[int, int]] = {}
        for tid, ops in enumerate(self.threads):
            for pos, op in enumerate(ops):
                if op.kind not in _KINDS:
                    raise ValueError(f"unknown op kind {op.kind!r}")
                if op.kind == "fence":
                    continue
                if not 0 <= op.scope < len(self.slots):
                    raise ValueError(
                        f"op {op.token()} references scope {op.scope} "
                        f"outside 0..{len(self.slots) - 1}")
                if op.kind in _ADDRESSED:
                    if not 0 <= op.index < self.slots[op.scope]:
                        raise ValueError(
                            f"op {op.token()} references slot {op.index} "
                            f"outside scope {op.scope}'s "
                            f"{self.slots[op.scope]} slots")
                if op.kind == "pim":
                    if op.scope in pim_seen:
                        raise ValueError(
                            f"scope {op.scope} has more than one PIM op")
                    pim_seen[op.scope] = (tid, pos)
                if op.kind == "store":
                    key = (op.scope, op.index)
                    if key in stores_seen:
                        raise ValueError(
                            f"slot s{op.scope}.{op.index} stored twice")
                    stores_seen[key] = (tid, pos)
        for (scope, index), (tid, pos) in sorted(stores_seen.items()):
            site = pim_seen.get(scope)
            if site is not None and (tid, pos) >= site:
                raise ValueError(
                    f"store to s{scope}.{index} at T{tid}.{pos} is not "
                    f"program-before its scope's PIM op at "
                    f"T{site[0]}.{site[1]}")
        if len(stores_seen) >= VERSION_BUMP:
            raise ValueError("too many stores for the value encoding")

    # -- derived views ---------------------------------------------------- #

    @property
    def op_count(self) -> int:
        return sum(len(ops) for ops in self.threads)

    def store_values(self) -> Dict[Tuple[int, int], int]:
        """``(scope, slot) -> value`` for every store, values ``1..n``."""
        values: Dict[Tuple[int, int], int] = {}
        for ops in self.threads:
            for op in ops:
                if op.kind == "store":
                    values[(op.scope, op.index)] = len(values) + 1
        return values

    def pim_scopes(self) -> Tuple[int, ...]:
        """Scopes that have a PIM op, in id order."""
        return tuple(sorted(
            op.scope for ops in self.threads for op in ops
            if op.kind == "pim"))

    # -- serialization ---------------------------------------------------- #

    def to_dict(self) -> Dict[str, object]:
        return {
            "schema": PROGRAM_SCHEMA,
            "seed": self.seed,
            "slots": list(self.slots),
            "prefetch": self.prefetch_budget,
            "threads": [[op.token() for op in ops] for ops in self.threads],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "FuzzProgram":
        if data.get("schema") != PROGRAM_SCHEMA:
            raise ValueError(
                f"not a fuzz program (schema {data.get('schema')!r})")
        program = cls(
            threads=tuple(
                tuple(FuzzOp.from_token(token) for token in ops)
                for ops in data["threads"]
            ),
            slots=tuple(int(n) for n in data["slots"]),
            prefetch_budget=int(data.get("prefetch", 1)),
            seed=int(data.get("seed", 0)),
        )
        program.validate()
        return program

    def digest(self) -> str:
        """A stable content digest of the scenario (seed excluded)."""
        payload = dict(self.to_dict())
        del payload["seed"]
        text = json.dumps(payload, sort_keys=True)
        return hashlib.sha256(text.encode("utf-8")).hexdigest()[:16]

    # -- abstract renderings ---------------------------------------------- #

    def rendering(self, model: Optional[ConsistencyModel] = None) -> Rendering:
        """Render for the abstract machine under ``model``'s discipline.

        ``None`` (the *bare* rendering, used for the lattice invariant
        so the four proposed models execute an identical program) and
        every model except the two below render the raw streams;
        mirroring :class:`repro.workloads.base.ProgramEmitter`,

        * ``SW_FLUSH`` additionally renders the program's ``flush`` ops
          (dropped everywhere else -- they are the software-flush
          discipline, not program content);
        * ``SCOPE_RELAXED`` appends a scope-fence after each PIM op.
        """
        values = self.store_values()
        threads: List[Tuple[MemOp, ...]] = []
        addr_info: Dict[int, Tuple[int, int]] = {
            fuzz_address(scope, index): (scope, index)
            for scope in range(len(self.slots))
            for index in range(self.slots[scope])
        }
        store_value: Dict[int, int] = {}
        store_site: Dict[int, Tuple[int, int]] = {}
        pim_site: Dict[int, Tuple[int, int]] = {}
        for tid, ops in enumerate(self.threads):
            rendered: List[MemOp] = []
            for op in ops:
                index = len(rendered)
                if op.kind == "fence":
                    rendered.append(MemOp(OpKind.MEM_FENCE, tid, index))
                elif op.kind == "flush":
                    if model is ConsistencyModel.SW_FLUSH:
                        rendered.append(MemOp(
                            OpKind.FLUSH, tid, index,
                            address=fuzz_address(op.scope, op.index),
                            scope=op.scope))
                elif op.kind == "pim":
                    rendered.append(MemOp(
                        OpKind.PIM_OP, tid, index, scope=op.scope))
                    pim_site[op.scope] = (tid, index)
                    if model is ConsistencyModel.SCOPE_RELAXED:
                        rendered.append(MemOp(
                            OpKind.SCOPE_FENCE, tid, len(rendered),
                            scope=op.scope))
                elif op.kind == "store":
                    addr = fuzz_address(op.scope, op.index)
                    value = values[(op.scope, op.index)]
                    rendered.append(MemOp(
                        OpKind.STORE, tid, index, address=addr,
                        scope=op.scope, value=value))
                    store_value[addr] = value
                    store_site[addr] = (tid, index)
                else:  # load
                    rendered.append(MemOp(
                        OpKind.LOAD, tid, index,
                        address=fuzz_address(op.scope, op.index),
                        scope=op.scope))
            threads.append(tuple(rendered))
        program = LitmusProgram.build(
            threads,
            prefetchable=sorted(addr_info),
            pim_function=lambda addr, v: v + VERSION_BUMP,
            scopes={
                scope: [fuzz_address(scope, index)
                        for index in range(count)]
                for scope, count in enumerate(self.slots)
            },
        )
        return Rendering(
            program=program,
            threads=program.threads,
            addr_info=addr_info,
            store_value=store_value,
            store_site=store_site,
            pim_site=pim_site,
        )


def build_program(threads: Sequence[Sequence[FuzzOp]], slots: Sequence[int],
                  prefetch_budget: int = 1, seed: int = 0) -> FuzzProgram:
    """Construct and validate a :class:`FuzzProgram`."""
    program = FuzzProgram(
        threads=tuple(tuple(ops) for ops in threads),
        slots=tuple(slots),
        prefetch_budget=prefetch_budget,
        seed=seed,
    )
    program.validate()
    return program
