"""Store-backed fuzz corpus and minimal-repro artifacts.

Both live under ``<store-root>/fuzz/`` -- next to (not inside) the
result store's two-hex-digit entry shards, which
:meth:`~repro.api.store.ResultStore.paths` deliberately ignores, the
same arrangement the work queue uses for ``queue/``:

* ``fuzz/corpus/<digest>.json`` -- one entry per surviving program: the
  full program description plus the outcome-set fingerprints of every
  executor leg (:func:`repro.fuzz.oracle.fingerprints`) and, when the
  timing leg ran, the per-model stale-read counts.  ``repro-bench fuzz
  replay`` recomputes both and diffs: the corpus is a regression suite
  that ratchets the semantics of the model checkers *and* the timing
  stack.
* ``fuzz/repros/<digest>.json`` -- self-describing minimal repros the
  shrinker produced from invariant violations: the shrunk program, the
  violation (outcome, happens-before cycle), shrink provenance and the
  root seed.  CI uploads these on failure.
* ``fuzz/flight/<digest>-<model>.json`` -- flight-recorder dumps
  (``fuzz run --trace``): the shrunk violating program re-run with the
  event ring armed, snapshotting the last trace records leading up to
  the moment the invariant fired.  Deterministic, so a dump replays to
  the byte-identical snapshot.

Writes go through :func:`repro.api.store.atomic_write_json`, so corpus
growth is safe under concurrent fuzz runs sharing a store.
"""

from __future__ import annotations

import os
from typing import Dict, Iterator, List, Optional

from repro.api.store import atomic_write_json, read_json
from repro.fuzz import oracle
from repro.fuzz.program import FuzzProgram

__all__ = ["CORPUS_SCHEMA", "FLIGHT_SCHEMA", "REPRO_SCHEMA", "FuzzCorpus",
           "corpus_entry", "replay_entry"]

#: Schema tags of the artifact kinds.
CORPUS_SCHEMA = "repro-fuzz-corpus/1"
REPRO_SCHEMA = "repro-fuzz-repro/1"
FLIGHT_SCHEMA = "repro-fuzz-flight/1"

#: Directory under a store root holding fuzz state.
FUZZ_DIR = "fuzz"


def corpus_entry(program: FuzzProgram,
                 timing: Optional[Dict[str, int]] = None,
                 seed: Optional[int] = None) -> Dict[str, object]:
    """The corpus document for one surviving program."""
    return {
        "schema": CORPUS_SCHEMA,
        "digest": program.digest(),
        "seed": program.seed if seed is None else seed,
        "program": program.to_dict(),
        "fingerprints": oracle.fingerprints(program),
        "timing_stale_reads": timing,
    }


def replay_entry(entry: Dict[str, object]) -> List[str]:
    """Recompute one corpus entry's abstract fingerprints and diff.

    Returns human-readable mismatch lines (empty means the entry still
    reproduces).  Timing counts are replayed by the harness, which owns
    a Runner; this function needs only the abstract machines.
    """
    if entry.get("schema") != CORPUS_SCHEMA:
        return [f"not a corpus entry (schema {entry.get('schema')!r})"]
    try:
        program = FuzzProgram.from_dict(entry["program"])
    except (KeyError, TypeError, ValueError) as exc:
        return [f"unparseable program: {exc}"]
    mismatches: List[str] = []
    if program.digest() != entry.get("digest"):
        mismatches.append(
            f"digest drift: entry says {entry.get('digest')}, "
            f"program hashes to {program.digest()}")
    recorded = entry.get("fingerprints") or {}
    current = oracle.fingerprints(program)
    for leg in sorted(set(recorded) | set(current)):
        was, now = recorded.get(leg), current.get(leg)
        if was != now:
            mismatches.append(
                f"{leg}: recorded outcome digest {was}, now {now}")
    return mismatches


class FuzzCorpus:
    """The on-disk corpus + repro trees under one store root."""

    def __init__(self, store_root: str) -> None:
        self.root = os.path.join(os.fspath(store_root), FUZZ_DIR)
        self.corpus_dir = os.path.join(self.root, "corpus")
        self.repro_dir = os.path.join(self.root, "repros")
        self.flight_dir = os.path.join(self.root, "flight")

    # -- corpus ---------------------------------------------------------- #

    def add(self, entry: Dict[str, object]) -> str:
        """Persist one corpus entry; returns its path (idempotent)."""
        path = os.path.join(self.corpus_dir, f"{entry['digest']}.json")
        atomic_write_json(path, entry)
        return path

    def entries(self) -> Iterator[Dict[str, object]]:
        """Every readable corpus entry, in digest order."""
        if not os.path.isdir(self.corpus_dir):
            return
        for filename in sorted(os.listdir(self.corpus_dir)):
            if not filename.endswith(".json"):
                continue
            entry = read_json(os.path.join(self.corpus_dir, filename))
            if entry is not None:
                yield entry

    def __len__(self) -> int:
        if not os.path.isdir(self.corpus_dir):
            return 0
        return sum(1 for f in os.listdir(self.corpus_dir)
                   if f.endswith(".json"))

    # -- repros ---------------------------------------------------------- #

    def write_repro(self, repro: Dict[str, object]) -> str:
        """Persist one minimal-repro artifact; returns its path."""
        name = f"{repro['digest']}-{repro['invariant']}.json"
        path = os.path.join(self.repro_dir, name)
        atomic_write_json(path, repro)
        return path

    def repros(self) -> Iterator[Dict[str, object]]:
        if not os.path.isdir(self.repro_dir):
            return
        for filename in sorted(os.listdir(self.repro_dir)):
            if not filename.endswith(".json"):
                continue
            repro = read_json(os.path.join(self.repro_dir, filename))
            if repro is not None:
                yield repro

    # -- flight dumps ----------------------------------------------------- #

    def write_flight(self, dump: Dict[str, object]) -> str:
        """Persist one flight-recorder dump; returns its path."""
        name = f"{dump['digest']}-{dump['model']}.json"
        path = os.path.join(self.flight_dir, name)
        atomic_write_json(path, dump)
        return path

    def flights(self) -> Iterator[Dict[str, object]]:
        if not os.path.isdir(self.flight_dir):
            return
        for filename in sorted(os.listdir(self.flight_dir)):
            if not filename.endswith(".json"):
                continue
            dump = read_json(os.path.join(self.flight_dir, filename))
            if dump is not None:
                yield dump
