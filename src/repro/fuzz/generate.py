"""Seeded litmus-scenario generation.

:func:`generate_program` draws one :class:`~repro.fuzz.program.FuzzProgram`
from a ``random.Random`` stream; :func:`generate_batch` derives one
independent stream per program index from a root seed, so batch N of
seed S is identical on every machine, any backend, forever -- the
property the CI fuzz gates and corpus replay rely on.

The generator owes the oracle its structural rules (one PIM per scope,
stores confined to the PIM thread before the PIM op, one store per
address) and builds programs that satisfy them *by construction*:

* every scope is owned by one thread; the owner emits a writer block
  -- stores into the scope, optional fence, optional flushes (the
  software-flush discipline, rendered only under SW-Flush), then the
  scope's single PIM op;
* every thread sprinkles observer loads around the writer blocks,
  including pre-PIM loads that pull lines into the cache -- the raw
  material of Fig. 1-style stale reads;
* a knob-bounded op budget keeps the model checkers' state spaces small
  enough for hundreds of programs per CI run.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.fuzz.program import FuzzOp, FuzzProgram, build_program

__all__ = ["GeneratorKnobs", "generate_program", "generate_batch"]


@dataclass(frozen=True)
class GeneratorKnobs:
    """Bounds on generated scenarios (all ranges inclusive).

    The defaults keep the abstract state space tractable: the model
    checkers enumerate every interleaving (and, for the lattice
    invariant, every Table-I reordering), so op counts matter more than
    thread counts.
    """

    threads: Tuple[int, int] = (2, 3)
    scopes: Tuple[int, int] = (1, 2)
    slots: Tuple[int, int] = (1, 2)
    #: Observer loads attempted per thread.
    loads: Tuple[int, int] = (1, 3)
    #: Probability a scope's writer block stores to a given slot.
    store_prob: float = 0.7
    #: Probability a stored slot also gets an explicit flush op.
    flush_prob: float = 0.6
    #: Probability of a fence between a writer block's stores and PIM.
    fence_prob: float = 0.5
    #: Probability a scope gets a PIM op at all.
    pim_prob: float = 0.9
    prefetch: Tuple[int, int] = (1, 2)
    #: Hard per-program op budget; loads are dropped to fit.
    max_ops: int = 12

    def bounded(self, max_ops: Optional[int]) -> "GeneratorKnobs":
        """These knobs with a tighter op budget, if one is given."""
        if max_ops is None or max_ops >= self.max_ops:
            return self
        return GeneratorKnobs(
            threads=self.threads, scopes=self.scopes, slots=self.slots,
            loads=self.loads, store_prob=self.store_prob,
            flush_prob=self.flush_prob, fence_prob=self.fence_prob,
            pim_prob=self.pim_prob, prefetch=self.prefetch,
            max_ops=max_ops)


def generate_program(rng: random.Random,
                     knobs: GeneratorKnobs = GeneratorKnobs(),
                     seed: int = 0) -> FuzzProgram:
    """Draw one valid fuzz program from ``rng``."""
    num_threads = rng.randint(*knobs.threads)
    num_scopes = rng.randint(*knobs.scopes)
    slots = tuple(rng.randint(*knobs.slots) for _ in range(num_scopes))
    owners = [rng.randrange(num_threads) for _ in range(num_scopes)]

    threads: List[List[FuzzOp]] = [[] for _ in range(num_threads)]

    def observer_load(tid: int) -> FuzzOp:
        scope = rng.randrange(num_scopes)
        return FuzzOp("load", scope, rng.randrange(slots[scope]))

    # Pre-block observer loads: they allocate lines in the shared cache,
    # which is what makes post-PIM staleness reachable for the controls.
    for tid in range(num_threads):
        for _ in range(rng.randint(*knobs.loads)):
            if rng.random() < 0.5:
                threads[tid].append(observer_load(tid))

    # Writer blocks, one per scope, in scope order on the owner thread.
    # At least one scope gets a PIM op: a scenario without any checks
    # nothing, so the last scope's block forces one if no roll landed.
    any_pim = False
    for scope in range(num_scopes):
        owner = threads[owners[scope]]
        stored = [index for index in range(slots[scope])
                  if rng.random() < knobs.store_prob]
        for index in stored:
            owner.append(FuzzOp("store", scope, index))
        if stored and rng.random() < knobs.fence_prob:
            owner.append(FuzzOp("fence"))
        for index in stored:
            if rng.random() < knobs.flush_prob:
                owner.append(FuzzOp("flush", scope, index))
        if rng.random() < knobs.pim_prob \
                or (scope == num_scopes - 1 and not any_pim):
            owner.append(FuzzOp("pim", scope))
            any_pim = True

    # Post-block observer loads on every thread.
    for tid in range(num_threads):
        for _ in range(rng.randint(*knobs.loads)):
            threads[tid].append(observer_load(tid))

    # Enforce the op budget by dropping loads (deterministically: the
    # rng picks which), never writer-block structure.
    def op_count() -> int:
        return sum(len(ops) for ops in threads)

    while op_count() > knobs.max_ops:
        candidates = [
            (tid, pos)
            for tid, ops in enumerate(threads)
            for pos, op in enumerate(ops) if op.kind == "load"
        ]
        if not candidates:
            break
        tid, pos = candidates[rng.randrange(len(candidates))]
        del threads[tid][pos]

    return build_program(
        threads, slots,
        prefetch_budget=rng.randint(*knobs.prefetch),
        seed=seed,
    )


def generate_batch(seed: int, count: int,
                   knobs: GeneratorKnobs = GeneratorKnobs()
                   ) -> List[FuzzProgram]:
    """``count`` distinct programs from a root seed.

    Program ``i`` draws from ``random.Random((seed, i))`` -- independent
    of every other index, so a batch is stable under count changes and
    trivially parallelizable.  Duplicate scenarios (same content digest)
    are re-drawn from follow-up streams; the retry bound keeps the batch
    deterministic even if the knobs collapse the scenario space.
    """
    programs: List[FuzzProgram] = []
    seen = set()
    for index in range(count):
        for attempt in range(25):
            rng = random.Random(f"{seed}:{index}:{attempt}")
            program = generate_program(rng, knobs, seed=seed)
            if program.digest() not in seen:
                break
        seen.add(program.digest())
        programs.append(program)
    return programs
