"""Thin setup.py shim so legacy editable installs work offline.

The environment has no network and no ``wheel`` package, so PEP-660
editable installs (which build a wheel) are unavailable;
``pip install -e . --no-build-isolation --no-use-pep517`` uses this file.
All real metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
